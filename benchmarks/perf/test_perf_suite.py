"""Smoke tests for the perf microbenchmark suite and its regression gate.

The suite itself runs at a tiny scale here (structure and units, not
timings — CI clocks are too noisy to assert absolute numbers); the
compare-gate logic is exercised with synthetic payloads.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from compare import calibration_drift, compare, speedup  # noqa: E402
from grid import run_grid, smoke_grid  # noqa: E402
from perf_suite import SCHEMA_VERSION, calibration_score, run_suite  # noqa: E402


def test_suite_smoke_produces_all_microbenchmarks():
    payload = run_suite(scale=0.02, repeats=1)
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["calibration_ops_per_s"] > 0
    for name in (
        "pure_decode",
        "mixed",
        "moe_heavy",
        "engine_grid",
        "incremental_decode",
        "autoscaled_cluster",
        "sharded_fleet",
        "paged_serving",
        "chaos_recovery",
        "prefix_reuse",
    ):
        entry = payload["benchmarks"][name]
        assert entry["value"] > 0
        assert entry["normalized"] > 0
        assert entry["unit"] == "stages/s"
        assert not entry["lower_is_better"]
    # The end-to-end sweep points only run at full scale.
    assert "fig13_sweep" not in payload["benchmarks"]


def test_calibration_is_positive_and_repeatable_order_of_magnitude():
    first = calibration_score(loops=5)
    second = calibration_score(loops=5)
    assert first > 0 and second > 0
    assert 0.2 < first / second < 5.0


def _payload(value: float, lower_is_better: bool = False) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "calibration_ops_per_s": 100.0,
        "benchmarks": {
            "bench": {
                "value": value,
                "normalized": value / 100.0 if not lower_is_better else value * 100.0,
                "unit": "s" if lower_is_better else "stages/s",
                "lower_is_better": lower_is_better,
            }
        },
    }


def test_gate_passes_within_tolerance(capsys):
    failures = compare(_payload(1000.0), _payload(900.0), max_regression=0.20, raw=False)
    assert failures == []
    capsys.readouterr()


def test_gate_fails_beyond_tolerance(capsys):
    failures = compare(_payload(1000.0), _payload(700.0), max_regression=0.20, raw=False)
    assert len(failures) == 1
    capsys.readouterr()


def test_gate_handles_lower_is_better(capsys):
    fast = _payload(1.0, lower_is_better=True)
    slow = _payload(2.0, lower_is_better=True)
    assert compare(fast, slow, max_regression=0.20, raw=False)  # slower wall = regression
    assert compare(slow, fast, max_regression=0.20, raw=False) == []  # faster passes
    capsys.readouterr()


def test_grid_smoke_cells_cover_both_clock_backends():
    cells = run_grid(smoke_grid(), requests=8)
    assert len(cells) == 4
    widths = {cell["bucket_width_s"] for cell in cells}
    assert None in widths and any(w is not None for w in widths)
    for cell in cells:
        assert cell["stages"] > 0
        assert cell["stages_per_s"] > 0


def test_calibration_drift_flags_mismatched_machines(capsys):
    base = _payload(1000.0)
    fresh = _payload(1000.0)
    base["calibration_ops_per_s"] = 100.0
    fresh["calibration_ops_per_s"] = 450.0  # 4.5x apart: not the same machine class
    assert calibration_drift(base, fresh) == 4.5
    failures = compare(base, fresh, max_regression=0.20, raw=False, max_calibration_drift=2.0)
    assert any("calibration drift" in f for f in failures)
    # Within the band (or with the check disabled) the gate stays quiet.
    fresh["calibration_ops_per_s"] = 150.0
    assert compare(base, fresh, max_regression=0.20, raw=False, max_calibration_drift=2.0) == []
    fresh["calibration_ops_per_s"] = 450.0
    assert compare(base, fresh, max_regression=0.20, raw=False, max_calibration_drift=0.0) == []
    capsys.readouterr()


def test_speedup_direction():
    higher = {"value": 200.0, "normalized": 2.0, "lower_is_better": False}
    base = {"value": 100.0, "normalized": 1.0, "lower_is_better": False}
    assert speedup(base, higher, raw=False) == 2.0
    wall_base = {"value": 2.0, "normalized": 2.0, "lower_is_better": True}
    wall_new = {"value": 1.0, "normalized": 1.0, "lower_is_better": True}
    assert speedup(wall_base, wall_new, raw=False) == 2.0
