"""Parameter-grid perf harness for the columnar serving engine.

Sweeps the engine hot loop across the four axes that shape its cost
profile — per-replica batch size, lifecycle ``EventClock`` bucket width
(heap vs calendar-queue backend), control/telemetry cadence, and fleet
size — running one elastic fleet per cell with exact (non-memoized)
pricing so every cell exercises the columnar steady-run commit path, and
recording end-to-end stages/second per cell.

Usage (from the repo root, with ``PYTHONPATH=src``)::

    python benchmarks/perf/grid.py [--smoke] [--requests N]
                                   [--output engine_grid.json]

``--smoke`` runs the reduced CI grid (4 cells, fewer requests) — the same
cells the ``engine_grid`` BENCH_PERF entry summarizes as a geometric
mean, so the committed regression gate covers the sweep while the
per-cell breakdown ships as a CI artifact.  The full grid (36 cells) is
for local before/after comparisons when touching the engine hot loop.

Every cell also records a calibration-normalized rate (see
``perf_suite.calibration_score``) so sweeps from different machines can
be compared, and the payload carries the calibration itself so a
mismatch is visible rather than silently normalized away.
"""

from __future__ import annotations

import argparse
import itertools
import json
import time
from pathlib import Path

from repro.core.system import duplex_system
from repro.models.config import mixtral
from repro.serving.autoscaler import ElasticFleetSimulator, QueueDepthPolicy
from repro.serving.generator import WorkloadSpec
from repro.serving.simulator import SimulationLimits

SCHEMA_VERSION = 1

#: Full sweep: 3 batches x 3 bucket widths x 2 cadences x 2 fleet sizes.
FULL_AXES: dict[str, tuple] = {
    "batch": (4, 8, 16),
    "bucket_width_s": (None, 0.5, 2.0),
    "control_interval_s": (0.25, 1.0),
    "fleet": (2, 4),
}

#: CI smoke: both EventClock backends, two fleet sizes, one batch/cadence.
SMOKE_AXES: dict[str, tuple] = {
    "batch": (8,),
    "bucket_width_s": (None, 0.5),
    "control_interval_s": (0.5,),
    "fleet": (1, 2),
}


def _cells(axes: dict[str, tuple]) -> list[dict]:
    names = list(axes)
    return [
        dict(zip(names, values, strict=True))
        for values in itertools.product(*(axes[name] for name in names))
    ]


def full_grid() -> list[dict]:
    return _cells(FULL_AXES)


def smoke_grid() -> list[dict]:
    return _cells(SMOKE_AXES)


def run_cell(cell: dict, requests: int, seed: int = 0) -> dict:
    """Run one grid cell and return it annotated with its measured rate.

    Exact pricing (``memoize_pricing=False``) keeps every replica on the
    columnar steady-run path; the moderate ``lout_mean`` gives each
    arrival a decode tail long enough for vectorized runs between
    arrivals without making a cell take more than a couple of seconds.
    """
    model = mixtral()
    system = duplex_system(model, co_processing=True, expert_tensor_parallel=True)
    workload = WorkloadSpec(lin_mean=512, lout_mean=96, lin_cv=0.3, lout_cv=0.3, qps=40.0)
    limits = SimulationLimits(max_stages=1_000_000, warmup_stages=0)
    sim = ElasticFleetSimulator(
        system,
        model,
        workload,
        policy=QueueDepthPolicy(scale_up_depth=2.0, scale_down_depth=0.25, cooldown_s=1.0),
        min_replicas=1,
        max_replicas=cell["fleet"],
        control_interval_s=cell["control_interval_s"],
        provision_delay_s=0.5,
        warmup_delay_s=0.5,
        warm_start_delay_s=0.1,
        max_batch=cell["batch"],
        seed=seed,
        memoize_pricing=False,
        max_requests=requests,
        lifecycle_bucket_width_s=cell["bucket_width_s"],
    )
    start = time.perf_counter()
    sim.run(limits)
    elapsed = time.perf_counter() - start
    stages = sum(engine.stages for engine in sim.engines)
    return {**cell, "stages": stages, "stages_per_s": stages / elapsed}


def run_grid(cells: list[dict], requests: int, seed: int = 0) -> list[dict]:
    """Run every cell (in grid order) and return the annotated cells."""
    return [run_cell(cell, requests=requests, seed=seed) for cell in cells]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced CI grid")
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="arrivals per cell (default: 120 smoke / 400 full)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("engine_grid.json"),
        help="where to write the sweep payload (default: ./engine_grid.json)",
    )
    args = parser.parse_args()

    from perf_suite import calibration_score

    cells = smoke_grid() if args.smoke else full_grid()
    requests = args.requests if args.requests is not None else (120 if args.smoke else 400)
    results = run_grid(cells, requests=requests)
    calibration = calibration_score()
    for cell in results:
        cell["normalized"] = cell["stages_per_s"] / calibration

    payload = {
        "schema": SCHEMA_VERSION,
        "smoke": args.smoke,
        "requests": requests,
        "calibration_ops_per_s": calibration,
        "cells": results,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.output} ({len(results)} cells, {requests} requests/cell)")
    print(f"calibration: {calibration:.1f} ops/s")
    header = f"{'batch':>5s} {'bucket':>6s} {'cadence':>7s} {'fleet':>5s} {'stages/s':>10s}"
    print(header)
    for cell in results:
        bucket = "heap" if cell["bucket_width_s"] is None else f"{cell['bucket_width_s']:g}"
        print(
            f"{cell['batch']:>5d} {bucket:>6s} {cell['control_interval_s']:>7g} "
            f"{cell['fleet']:>5d} {cell['stages_per_s']:>10.1f}"
        )


if __name__ == "__main__":
    main()
