"""Produce ``BENCH_PERF.json`` — the repo's perf-trajectory record.

Usage (from the repo root, with ``PYTHONPATH=src``)::

    python benchmarks/perf/run_perf.py [--output BENCH_PERF.json]
                                       [--scale 1.0] [--repeats 3]

The output schema is described in :mod:`perf_suite`.  Commit the refreshed
file whenever a PR intentionally changes performance; CI re-runs the suite
and fails if the fresh normalized numbers regress >20% against the
committed ones (see ``compare.py``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from perf_suite import run_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_PERF.json",
        help="where to write the results (default: repo-root BENCH_PERF.json)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="iteration multiplier")
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repetitions")
    args = parser.parse_args()

    payload = run_suite(scale=args.scale, repeats=args.repeats)
    if args.output.exists():
        # Preserve hand-added provenance (e.g. the `reference` block with
        # pre-fast-path baselines) across refreshes: carry over any
        # top-level key the suite itself does not produce.
        previous = json.loads(args.output.read_text())
        for key, value in previous.items():
            payload.setdefault(key, value)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.output}")
    print(f"calibration: {payload['calibration_ops_per_s']:.1f} ops/s")
    for name, entry in sorted(payload["benchmarks"].items()):
        print(f"  {name:24s} {entry['value']:12.2f} {entry['unit']}")


if __name__ == "__main__":
    main()
