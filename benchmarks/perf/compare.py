"""Compare two ``BENCH_PERF.json`` files and gate on regressions.

Usage::

    python benchmarks/perf/compare.py BASELINE.json NEW.json \
        [--max-regression 0.20] [--raw]

Prints a per-benchmark speedup table (new vs baseline) and exits non-zero
when any benchmark present in both files regresses by more than
``--max-regression`` (default 20%).  Comparison uses the
calibration-normalized values by default so differently-sized CI runners
do not read as code regressions; ``--raw`` compares raw values instead
(meaningful only on identical hardware).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def speedup(baseline: dict, fresh: dict, raw: bool) -> float:
    """New-over-baseline improvement factor (>1 = faster)."""
    key = "value" if raw else "normalized"
    old = baseline[key]
    new = fresh[key]
    if old == 0 or new == 0:
        return 1.0
    if baseline.get("lower_is_better"):
        return old / new
    return new / old


def compare(baseline: dict, fresh: dict, max_regression: float, raw: bool) -> list[str]:
    """Return the list of regression messages (empty = gate passes)."""
    failures: list[str] = []
    shared = sorted(set(baseline["benchmarks"]) & set(fresh["benchmarks"]))
    if not shared:
        return ["no benchmarks in common between the two files"]
    print(f"{'benchmark':26s} {'baseline':>14s} {'new':>14s} {'speedup':>8s}")
    for name in shared:
        old = baseline["benchmarks"][name]
        new = fresh["benchmarks"][name]
        factor = speedup(old, new, raw)
        flag = ""
        if factor < 1.0 - max_regression:
            flag = "  REGRESSION"
            failures.append(
                f"{name}: {factor:.2f}x of baseline "
                f"(allowed >= {1.0 - max_regression:.2f}x)"
            )
        print(
            f"{name:26s} {old['value']:>12.2f} {old['unit']:<2s}"
            f" {new['value']:>12.2f} {new['unit']:<2s} {factor:>7.2f}x{flag}"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed BENCH_PERF.json")
    parser.add_argument("fresh", type=Path, help="freshly produced BENCH_PERF.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional slowdown before failing (default 0.20)",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="compare raw values instead of calibration-normalized ones",
    )
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures = compare(baseline, fresh, args.max_regression, args.raw)
    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
