"""Compare two ``BENCH_PERF.json`` files and gate on regressions.

Usage::

    python benchmarks/perf/compare.py BASELINE.json NEW.json \
        [--max-regression 0.20] [--raw] [--max-calibration-drift 2.0]

Prints a per-benchmark speedup table (new vs baseline) and exits non-zero
when any benchmark present in both files regresses by more than
``--max-regression`` (default 20%).  Comparison uses the
calibration-normalized values by default so differently-sized CI runners
do not read as code regressions; ``--raw`` compares raw values instead
(meaningful only on identical hardware).

The two files' ``calibration_ops_per_s`` scores are always printed and
compared: a drift beyond ``--max-calibration-drift`` (ratio in either
direction, default 2x) fails the gate, because normalized values from
machines *that* different measure the calibration loop's fidelity more
than the code under test — flag the mismatch instead of silently
normalizing it away.  Pass 0 to disable the check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def speedup(baseline: dict, fresh: dict, raw: bool) -> float:
    """New-over-baseline improvement factor (>1 = faster)."""
    key = "value" if raw else "normalized"
    old = baseline[key]
    new = fresh[key]
    if old == 0 or new == 0:
        return 1.0
    if baseline.get("lower_is_better"):
        return old / new
    return new / old


def calibration_drift(baseline: dict, fresh: dict) -> float | None:
    """New-over-baseline calibration ratio (None when either is absent)."""
    old = baseline.get("calibration_ops_per_s")
    new = fresh.get("calibration_ops_per_s")
    if not old or not new:
        return None
    return new / old


def compare(
    baseline: dict,
    fresh: dict,
    max_regression: float,
    raw: bool,
    max_calibration_drift: float = 0.0,
) -> list[str]:
    """Return the list of regression messages (empty = gate passes)."""
    failures: list[str] = []
    shared = sorted(set(baseline["benchmarks"]) & set(fresh["benchmarks"]))
    if not shared:
        return ["no benchmarks in common between the two files"]
    drift = calibration_drift(baseline, fresh)
    if drift is not None:
        print(
            f"calibration: baseline {baseline['calibration_ops_per_s']:.1f} ops/s, "
            f"new {fresh['calibration_ops_per_s']:.1f} ops/s ({drift:.2f}x)"
        )
        if max_calibration_drift > 0 and not (
            1.0 / max_calibration_drift <= drift <= max_calibration_drift
        ):
            failures.append(
                f"calibration drift {drift:.2f}x exceeds "
                f"{max_calibration_drift:.2f}x — normalized values are not "
                "comparable across machines this different"
            )
    print(f"{'benchmark':26s} {'baseline':>14s} {'new':>14s} {'speedup':>8s}")
    for name in shared:
        old = baseline["benchmarks"][name]
        new = fresh["benchmarks"][name]
        factor = speedup(old, new, raw)
        flag = ""
        if factor < 1.0 - max_regression:
            flag = "  REGRESSION"
            failures.append(
                f"{name}: {factor:.2f}x of baseline "
                f"(allowed >= {1.0 - max_regression:.2f}x)"
            )
        print(
            f"{name:26s} {old['value']:>12.2f} {old['unit']:<2s}"
            f" {new['value']:>12.2f} {new['unit']:<2s} {factor:>7.2f}x{flag}"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed BENCH_PERF.json")
    parser.add_argument("fresh", type=Path, help="freshly produced BENCH_PERF.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional slowdown before failing (default 0.20)",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="compare raw values instead of calibration-normalized ones",
    )
    parser.add_argument(
        "--max-calibration-drift",
        type=float,
        default=2.0,
        help="allowed calibration ratio either way before failing "
        "(default 2.0; 0 disables the check)",
    )
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures = compare(
        baseline,
        fresh,
        args.max_regression,
        args.raw,
        max_calibration_drift=args.max_calibration_drift,
    )
    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
