"""Perf-regression microbenchmarks for the stage-pricing fast path.

The serving stack's wall-clock budget is dominated by stage pricing —
thousands of continuous-batching stages per simulation, multiplied by
replicas x sweep points — so this suite times the pricing hot paths
directly and records the repo's perf trajectory in a repo-root
``BENCH_PERF.json``:

* ``pure_decode`` — exact-mode stages/second through
  :class:`~repro.core.executor.StageExecutor` (Mixtral Duplex+PE+ET), the
  per-stage pricing floor the engine fast path amortizes away;
* ``mixed`` / ``moe_heavy`` — end-to-end engine stages/second on a
  closed-loop long-decode serving run through the columnar steady-run
  fast path (Mixtral Duplex+PE+ET for ``mixed``, whose cycles interleave
  admission/prefill stages with vectorized decode runs; GLaM's 64
  experts make ``moe_heavy`` the MoE-dispatch stress test);
* ``engine_grid`` — geometric-mean stages/second over the smoke cells of
  the parameter-grid harness (``grid.py``: batch size x EventClock bucket
  width x telemetry cadence x fleet size);
* ``incremental_decode`` — stages/second through
  :class:`~repro.serving.engine.IncrementalStagePricer` on a steady
  decode run (the delta fast path);
* ``autoscaled_cluster`` — end-to-end stages/second of an elastic fleet
  under the queue-depth policy (the control-plane hot path: routing,
  control ticks, lifecycle, cadence telemetry, engine stepping);
* ``paged_serving`` — end-to-end stages/second of one engine serving the
  long-context scenario beyond its KV capacity under MIGRATE paging (the
  preemption hot path: victim selection, evict/resume accounting, the
  resume feed, host-link pricing);
* ``chaos_recovery`` — end-to-end stages/second of a fleet carrying an
  armed-but-quiescent fault injector (beyond-horizon crash trace, empty
  stage-time profiles): the overhead fault support adds to the
  fault-free hot path, which must stay negligible;
* ``prefix_reuse`` — end-to-end stages/second of one engine serving the
  agent-loop session scenario with shared-prefix KV dedup on (the
  cache-hit admission hot path: radix acquire/commit/release per
  request, suffix-only reservation, counterfactual saved-prefill
  pricing);
* ``fig13_sweep`` / ``fig13_sweep_fast`` — end-to-end Fig. 13 sweep
  wall-clock on a reduced grid, single worker, in exact mode and with
  the memoized+incremental fast path.

Because CI hardware varies, every result also carries a *normalized*
value: the raw metric divided by a fixed-work calibration score measured
in the same process.  ``compare.py`` gates regressions on the normalized
values, so a slower runner does not read as a code regression.

Run ``python benchmarks/perf/run_perf.py`` to produce ``BENCH_PERF.json``
and ``python benchmarks/perf/compare.py`` to diff two such files.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.core.executor import SharedPricingCache, StageExecutor, StageWorkload
from repro.core.system import duplex_system
from repro.experiments import fig13
from repro.models.config import glam, mixtral
from repro.serving.autoscaler import ElasticFleetSimulator, QueueDepthPolicy
from repro.serving.engine import IncrementalStagePricer
from repro.serving.generator import WorkloadSpec
from repro.serving.simulator import ServingSimulator, SimulationLimits

SCHEMA_VERSION = 1

#: Reduced Fig. 13 grid: 3 systems x 3 QPS points, single worker.
FIG13_QPS = (6.0, 10.0, 14.0)
FIG13_LIMITS = dict(max_stages=400, warmup_stages=40)


def calibration_score(loops: int = 40) -> float:
    """Fixed-work calibration (iterations/second) for normalization.

    A deterministic mix of small-array numpy work and Python arithmetic —
    the same kind of work the pricing hot paths do — so normalized
    benchmark values transfer across hosts of different speeds.
    """
    counts = np.arange(1, 65, dtype=np.int64)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        sink = 0.0
        for _ in range(loops):
            floats = counts.astype(np.float64)
            values = 2.0 * floats * 1.25e9 + floats * 14336.0
            total = float(values.cumsum()[-1])
            for value in values.tolist():
                sink += value / 1.0e12
            order = np.argsort(counts, kind="stable")
            sink += float(values[order].sum()) + total * 1e-30
        best = min(best, time.perf_counter() - start)
    if sink == float("inf"):  # pragma: no cover - keeps `sink` live
        raise RuntimeError
    return loops / best


def _best_rate(run: Callable[[], int], repeats: int) -> float:
    """Highest observed rate (units/second) over ``repeats`` timings."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        units = run()
        elapsed = time.perf_counter() - start
        best = max(best, units / elapsed)
    return best


def _best_wall(run: Callable[[], object], repeats: int) -> float:
    """Lowest observed wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# microbenchmarks
# ----------------------------------------------------------------------
def bench_pure_decode(iterations: int, repeats: int) -> float:
    model = mixtral()
    executor = StageExecutor(
        duplex_system(model, co_processing=True, expert_tensor_parallel=True), model
    )
    contexts = np.random.default_rng(0).integers(100, 4000, size=64)
    workload = StageWorkload(decode_context_lengths=contexts)
    executor.run_stage(workload)  # warm the operator caches

    def run() -> int:
        for _ in range(iterations):
            executor.run_stage(workload)
        return iterations

    return _best_rate(run, repeats)


def _engine_hot_loop_rate(model_factory, stages: int, repeats: int) -> float:
    """End-to-end engine stages/second on a closed-loop long-decode run.

    The workload that the columnar steady-run fast path exists for: a
    warm-started closed loop whose cycles are one admission/prefill stage
    followed by hundreds of pure-decode stages committed as vectorized
    runs.  Simulators are single-shot, so each repeat rebuilds one (and
    only times :meth:`run`, like the executor benches only time pricing).
    """
    model = model_factory()
    system = duplex_system(model, co_processing=True, expert_tensor_parallel=True)
    spec = WorkloadSpec(lin_mean=512, lout_mean=4096, lin_cv=0.3, lout_cv=0.3)
    limits = SimulationLimits(max_stages=stages, warmup_stages=16)
    best = 0.0
    for _ in range(repeats):
        sim = ServingSimulator(system, model, spec, max_batch=8, seed=0)
        start = time.perf_counter()
        sim.run(limits)
        elapsed = time.perf_counter() - start
        best = max(best, sim.engine.stages / elapsed)
    return best


def bench_mixed(stages: int, repeats: int) -> float:
    return _engine_hot_loop_rate(mixtral, stages, repeats)


def bench_moe_heavy(stages: int, repeats: int) -> float:
    # GLaM's 64 experts: expert dispatch dominates every decode stage.
    return _engine_hot_loop_rate(glam, stages, repeats)


def bench_incremental_decode(iterations: int, repeats: int) -> float:
    model = mixtral()
    executor = StageExecutor(
        duplex_system(model, co_processing=True, expert_tensor_parallel=True), model
    )
    base = np.random.default_rng(2).integers(100, 4000, size=64)

    def run() -> int:
        pricer = IncrementalStagePricer(executor)
        for step in range(iterations):
            pricer.price(StageWorkload.trusted(base + step))
        return iterations

    return _best_rate(run, repeats)


def bench_autoscaled_cluster(requests: int, repeats: int) -> float:
    """Stages/second through an elastic fleet end to end.

    Exercises the control-plane hot path — per-arrival routing over
    ACTIVE views, fixed-cadence control ticks (lifecycle + policy +
    fleet telemetry), and sliced drain — on top of memoized stage
    pricing, so regressions in the controller itself (not the pricing
    math) dominate the measurement.  Each repeat rebuilds the fleet with
    a fresh fleet-scoped cache so every run does identical work.
    """
    model = mixtral()
    system = duplex_system(model, co_processing=True, expert_tensor_parallel=True)
    workload = WorkloadSpec(lin_mean=512, lout_mean=48, lin_cv=0.3, lout_cv=0.3, qps=40.0)
    limits = SimulationLimits(max_stages=100_000, warmup_stages=0)

    def run() -> int:
        sim = ElasticFleetSimulator(
            system,
            model,
            workload,
            policy=QueueDepthPolicy(scale_up_depth=2.0, scale_down_depth=0.25, cooldown_s=1.0),
            min_replicas=1,
            max_replicas=4,
            control_interval_s=0.5,
            provision_delay_s=0.5,
            warmup_delay_s=0.5,
            warm_start_delay_s=0.1,
            max_batch=8,
            seed=0,
            max_requests=requests,
            shared_pricing_cache=SharedPricingCache(),
        )
        sim.run(limits)
        return sum(engine.stages for engine in sim.engines)

    return _best_rate(run, repeats)


def bench_sharded_fleet(requests: int, repeats: int) -> float:
    """Stages/second through a heterogeneous sharded fleet end to end.

    Exercises the TP x EP replica path — per-spec system construction,
    shared-expert-free all-to-all pricing over multi-node topologies, and
    device-budget accounting — behind the cluster router.  The fleet
    mixes a wide single replica with two narrow ones, so routing sees
    genuinely unequal replicas.  Each repeat rebuilds the fleet with a
    fresh fleet-scoped cache so every run does identical work.
    """
    from repro.serving.cluster import ClusterSimulator, ShardedReplicaSpec

    model = mixtral()
    system = duplex_system(model, co_processing=True)
    workload = WorkloadSpec(lin_mean=512, lout_mean=48, lin_cv=0.3, lout_cv=0.3, qps=40.0)
    limits = SimulationLimits(max_stages=100_000, warmup_stages=0)

    def run() -> int:
        sim = ClusterSimulator(
            system,
            model,
            workload,
            replicas=[
                ShardedReplicaSpec(tp=4, ep=2),
                ShardedReplicaSpec(tp=2, ep=1),
                ShardedReplicaSpec(tp=2, ep=1),
            ],
            max_batch=8,
            seed=0,
            max_requests=requests,
            shared_pricing_cache=SharedPricingCache(),
        )
        sim.run(limits)
        return sum(handle.replica.engine.stages for handle in sim.handles)

    return _best_rate(run, repeats)


def bench_paged_serving(requests: int, repeats: int) -> float:
    """Stages/second through a KV-paged engine end to end.

    The long-context scenario holds more resident KV than the device
    fits, so every run exercises the live-preemption machinery — policy
    victim ordering, manager evict/resume accounting, the resume
    TransferFeed, and host-link pricing — on top of regular stage
    pricing.  Each repeat rebuilds the simulator so every run does
    identical work.
    """
    from repro.serving.paging import PagingConfig
    from repro.serving.policy import SloAwarePolicy
    from repro.serving.scenarios import long_context
    from repro.serving.simulator import ServingSimulator

    model = mixtral()
    system = duplex_system(model, co_processing=True, expert_tensor_parallel=True)
    scenario = long_context().at_qps(4.0)
    limits = SimulationLimits(max_stages=1_000_000, warmup_stages=0)

    def run() -> int:
        sim = ServingSimulator(
            system,
            model,
            scenario.source(seed=0, max_requests=requests),
            max_batch=96,
            seed=0,
            policy=SloAwarePolicy(t2ft_slo_s=10.0, shed_expired=True),
            paging=PagingConfig(),
        )
        sim.run(limits)
        # Pressure only builds once ~70 concurrent residents accumulate,
        # so only the full-scale configuration asserts real evictions.
        if requests >= 80:
            assert sim.paging.manager.stats.evictions > 0
        return sim.engine.stages

    return _best_rate(run, repeats)


def bench_prefix_reuse(requests: int, repeats: int) -> float:
    """Stages/second through a prefix-deduped engine end to end.

    The agent-loop session scenario resubmits one long context every
    iteration, so every admission exercises the radix-index hot path —
    acquire/hit accounting, suffix-only reservation, commit on prefill
    completion, release on finish, and the counterfactual saved-prefill
    pricing (cached per distinct hit size).  Each repeat rebuilds the
    simulator so every run does identical work.
    """
    from repro.serving.paging import PrefixConfig
    from repro.serving.scenarios import agent_loop
    from repro.serving.simulator import ServingSimulator

    model = mixtral()
    system = duplex_system(model, co_processing=True, expert_tensor_parallel=True)
    scenario = agent_loop()
    limits = SimulationLimits(max_stages=1_000_000, warmup_stages=0)

    def run() -> int:
        sim = ServingSimulator(
            system,
            model,
            scenario.source(seed=0, max_requests=requests),
            max_batch=64,
            seed=0,
            prefix=PrefixConfig(capacity_tokens=64 * 1024),
        )
        report = sim.run(limits)
        assert report.prefix.get("hit_tokens", 0.0) > 0
        return sim.engine.stages

    return _best_rate(run, repeats)


def bench_chaos_recovery(requests: int, repeats: int) -> float:
    """Stages/second through a fault-armed fleet that never fires.

    The fault machinery must be free when quiescent: every stage pays
    the armed-injector checks (crash capping, detect-event polling, the
    attached — but empty — stage-time profile) while the beyond-horizon
    crash trace guarantees no fault ever fires, so the measurement
    isolates exactly the overhead fault support adds to the fault-free
    hot path.  Each repeat rebuilds the fleet with a fresh fleet-scoped
    cache so every run does identical work.
    """
    from repro.serving.cluster import ClusterSimulator
    from repro.serving.faults import FaultConfig, FaultInjector, RetryPolicy, StageTimeProfile

    model = mixtral()
    system = duplex_system(model, co_processing=True, expert_tensor_parallel=True)
    workload = WorkloadSpec(lin_mean=512, lout_mean=48, lin_cv=0.3, lout_cv=0.3, qps=40.0)
    limits = SimulationLimits(max_stages=100_000, warmup_stages=0)

    def run() -> int:
        sim = ClusterSimulator(
            system,
            model,
            workload,
            n_replicas=2,
            max_batch=8,
            seed=0,
            max_requests=requests,
            faults=FaultInjector(FaultConfig(crash_times=((1e9, 0),), crash_mttr_s=1.0)),
            retry=RetryPolicy(),
            shared_pricing_cache=SharedPricingCache(),
        )
        for handle in sim.handles:
            for engine in handle.replica.engines:
                engine.fault_profile = StageTimeProfile(())
        sim.run(limits)
        return sum(handle.replica.engine.stages for handle in sim.handles)

    return _best_rate(run, repeats)


def bench_engine_grid(requests: int, repeats: int) -> float:
    """Geometric-mean stages/second over the grid harness's smoke cells.

    One scalar summary of the batch x bucket-width x cadence x fleet-size
    sweep (see ``grid.py``), so the regression gate covers the whole
    columnar-engine parameter surface with a single BENCH_PERF key; the
    per-cell breakdown ships as the ``engine_grid.json`` CI artifact.
    """
    from grid import run_grid, smoke_grid

    best = 0.0
    for _ in range(repeats):
        cells = run_grid(smoke_grid(), requests=requests)
        rates = [cell["stages_per_s"] for cell in cells]
        best = max(best, float(np.exp(np.mean(np.log(rates)))))
    return best


def bench_fig13_sweep(repeats: int, fast: bool) -> float:
    limits = SimulationLimits(**FIG13_LIMITS)

    def run() -> None:
        fig13.run(
            qps_values=FIG13_QPS,
            limits=limits,
            workers=1,
            memoize=fast,
            incremental=fast,
        )

    run()  # warm imports and caches outside the timed window
    return _best_wall(run, repeats)


# ----------------------------------------------------------------------
# the suite
# ----------------------------------------------------------------------
def run_suite(scale: float = 1.0, repeats: int = 3) -> dict:
    """Run every benchmark and return the ``BENCH_PERF.json`` payload.

    Args:
        scale: iteration-count multiplier (the pytest smoke run uses a
            small fraction; 1.0 is the committed-baseline configuration).
        repeats: timing repetitions per benchmark (best-of).
    """
    calibration = calibration_score()
    iters = lambda n: max(1, int(n * scale))  # noqa: E731

    results: dict[str, dict] = {}

    def record(name: str, value: float, unit: str, lower_is_better: bool = False) -> None:
        normalized = (value * calibration) if lower_is_better else (value / calibration)
        results[name] = {
            "value": value,
            "normalized": normalized,
            "unit": unit,
            "lower_is_better": lower_is_better,
        }

    record("pure_decode", bench_pure_decode(iters(3000), repeats), "stages/s")
    record("mixed", bench_mixed(iters(12000), repeats), "stages/s")
    record("moe_heavy", bench_moe_heavy(iters(6000), repeats), "stages/s")
    record("engine_grid", bench_engine_grid(iters(160), repeats), "stages/s")
    record("incremental_decode", bench_incremental_decode(iters(3000), repeats), "stages/s")
    record("autoscaled_cluster", bench_autoscaled_cluster(iters(400), repeats), "stages/s")
    record("sharded_fleet", bench_sharded_fleet(iters(400), repeats), "stages/s")
    record("paged_serving", bench_paged_serving(iters(80), repeats), "stages/s")
    record("chaos_recovery", bench_chaos_recovery(iters(400), repeats), "stages/s")
    record("prefix_reuse", bench_prefix_reuse(iters(200), repeats), "stages/s")
    if scale >= 0.99:
        record("fig13_sweep", bench_fig13_sweep(repeats, fast=False), "s", lower_is_better=True)
        record(
            "fig13_sweep_fast", bench_fig13_sweep(repeats, fast=True), "s", lower_is_better=True
        )

    return {
        "schema": SCHEMA_VERSION,
        "calibration_ops_per_s": calibration,
        "benchmarks": results,
    }
