"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs its experiment exactly once (``benchmark.pedantic`` with
one round — these are minutes-long simulations, not microbenchmarks), saves
the figure's table to ``benchmarks/results/<name>.txt``, and asserts the
paper's qualitative shape.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered figure table to the results directory."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # Also emit to stdout so `pytest -s` shows the tables inline.
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
