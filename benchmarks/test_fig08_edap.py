"""Fig. 8: EDAP orderings of the PIM microarchitectures."""

from conftest import run_once

from repro.analysis.edap import best_architecture
from repro.experiments import fig8
from repro.hardware.processor import UnitKind


def test_fig8_edap(benchmark, save_result):
    study = run_once(benchmark, fig8.run)
    save_result("fig08_edap", fig8.format_rows(study))

    # Bank-PIM wins below Op/B 8; Logic-PIM wins at and above 8.
    assert fig8.crossover_opb(study) == 8
    for opb, points in study.items():
        values = {p.kind: p.normalized for p in points}
        # BankGroup-PIM never beats Logic-PIM (same roofline, worse area).
        assert values[UnitKind.BANKGROUP_PIM] >= values[UnitKind.LOGIC_PIM]
        # Match the published matrix to within 0.2 absolute.
        for kind, paper_value in fig8.PAPER_VALUES[opb].items():
            assert abs(values[kind] - paper_value) < 0.2, (
                f"Op/B {opb} {kind.value}: measured {values[kind]:.2f} "
                f"vs paper {paper_value:.2f}"
            )
    best_at_1 = best_architecture(study[1])
    assert best_at_1 is UnitKind.BANK_PIM
    benchmark.extra_info["crossover_opb"] = fig8.crossover_opb(study)
