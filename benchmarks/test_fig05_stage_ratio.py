"""Fig. 5(a): decoding-only stages dominate continuous batching."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5a_stage_ratio(benchmark, save_result):
    rows = run_once(benchmark, fig5.run_stage_ratio)
    save_result("fig05a_stage_ratio", fig5.format_stage_ratio(rows))

    for row in rows:
        # Each request is one prefill plus Lout decodes, so at steady state
        # the decoding-only share is ~ 1 - batch/Lout (and never below 1/2:
        # decoding-only stages dominate everywhere, the paper's point).
        expected = max(0.5, 1.0 - row.batch / row.lout)
        assert row.decoding_only_ratio >= expected - 0.05, (
            f"(Lin={row.lin}, Lout={row.lout}, batch={row.batch}): "
            f"{row.decoding_only_ratio} vs expected ~{expected}"
        )
        assert row.decoding_only_ratio >= 0.5
    # Longer outputs mean proportionally fewer prefills.
    by_batch = {}
    for row in rows:
        by_batch.setdefault((row.lin, row.batch), []).append(row)
    for group in by_batch.values():
        group.sort(key=lambda r: r.lout)
        ratios = [r.decoding_only_ratio for r in group]
        assert ratios == sorted(ratios)
    benchmark.extra_info["min_decode_ratio"] = min(r.decoding_only_ratio for r in rows)
