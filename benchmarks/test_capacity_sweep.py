"""Capacity-planning sweep smoke (CI slow stage).

A reduced grid through the elastic fleet controller: checks the sweep
machinery end-to-end (scenario rescaling, policy registry, process-pool
compatibility of the worker) and the qualitative capacity-planning
shape — always-max capacity is at least as good and at least as
expensive as always-min.
"""

from repro.experiments import capacity
from repro.serving.simulator import SimulationLimits

SMOKE_LIMITS = SimulationLimits(max_stages=40_000, warmup_stages=0)


def test_capacity_smoke_grid(save_result):
    rows = capacity.run(
        qps_values=(16.0,),
        policies=("static-min", "static-max", "slo-tracking"),
        max_requests=80,
        limits=SMOKE_LIMITS,
        workers=1,
    )
    assert len(rows) == 3
    by_policy = {row.policy: row for row in rows}
    assert set(by_policy) == {"static-min", "static-max", "slo-tracking"}
    static_min = by_policy["static-min"]
    static_max = by_policy["static-max"]
    tracking = by_policy["slo-tracking"]
    # The capacity-planning bracket: max capacity is at least as good on
    # SLO attainment and at least as expensive as min capacity; the
    # tracking policy stays inside the bracket on cost.
    assert static_max.t2ft_attainment >= static_min.t2ft_attainment
    assert static_max.replica_seconds > static_min.replica_seconds
    assert static_min.replica_seconds <= tracking.replica_seconds <= (
        static_max.replica_seconds
    )
    assert all(row.requests_completed > 0 for row in rows)
    save_result("capacity_planning_smoke", capacity.format_rows(rows))


def test_capacity_rows_are_deterministic():
    kwargs = dict(
        qps_values=(16.0,),
        policies=("slo-tracking",),
        max_requests=60,
        limits=SMOKE_LIMITS,
        workers=1,
    )
    assert capacity.run(**kwargs) == capacity.run(**kwargs)
