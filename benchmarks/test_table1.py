"""Table I: derived model sizes match the advertised parameter counts."""

from conftest import run_once

from repro.experiments import table1


def test_table1_model_sizes(benchmark, save_result):
    rows = run_once(benchmark, table1.run)
    save_result("table1_models", table1.format_rows(rows))
    for row in rows:
        assert row.relative_error < 0.02, f"{row.model.name} derived size off by >2%"
    benchmark.extra_info["max_relative_error"] = max(r.relative_error for r in rows)
