"""Memory-pressure sweep smoke (CI slow stage).

A reduced MIGRATE-vs-RECOMPUTE-vs-no-paging grid on the long-context
scenario: checks the sweep machinery end-to-end (scenario rescaling,
paging-config registry, process-pool compatibility of the worker) and
the qualitative Section VIII-C shape — both eviction policies complete
at least as many requests as the capacity-capped baseline, and the
baseline pays for its sheds in SLO attainment.
"""

import pytest

from repro.experiments import paging
from repro.serving.simulator import SimulationLimits

pytestmark = pytest.mark.paging

SMOKE_LIMITS = SimulationLimits(max_stages=40_000, warmup_stages=0)


def test_paging_smoke_grid(save_result):
    rows = paging.run(
        qps_values=(4.0,),
        max_requests=80,
        limits=SMOKE_LIMITS,
        workers=1,
    )
    assert len(rows) == 3
    by_policy = {row.policy: row for row in rows}
    assert set(by_policy) == {"none", "migrate", "recompute"}
    baseline = by_policy["none"]
    migrate = by_policy["migrate"]
    recompute = by_policy["recompute"]
    # Both eviction policies serve at least as much as the baseline.
    # Attainment alone is survivor-biased (the baseline's sheds never
    # record a T2FT sample), so the fair axis is goodput: requests whose
    # first token met the SLO.
    for paged in (migrate, recompute):
        assert paged.completed >= baseline.completed
        assert paged.shed <= baseline.shed
        paged_goodput = paged.completed * paged.t2ft_attainment
        assert paged_goodput >= baseline.completed * baseline.t2ft_attainment
    # The grid must actually exercise the preemption machinery — a smoke
    # that never evicts would wave through a broken evict/resume path.
    assert migrate.preemptions > 0
    assert recompute.preemptions > 0
    # The baseline never pages; the cost split is policy-shaped: only
    # migrate touches the host link, only recompute replays prefills.
    assert baseline.preemptions == 0
    assert baseline.migrated_tokens == 0 and baseline.recomputed_tokens == 0
    assert migrate.recomputed_tokens == 0
    assert recompute.migrated_tokens == 0 and recompute.host_link_s == 0.0
    save_result("paging_policies_smoke", paging.format_rows(rows))
