"""Fig. 4(a): MoE and attention dominate GPU execution time."""

from conftest import run_once

from repro.experiments import fig4
from repro.models.ops import OpCategory


def test_fig4a_time_breakdown(benchmark, save_result):
    rows = run_once(benchmark, fig4.run_breakdown)
    save_result("fig04a_breakdown", fig4.format_breakdown(rows))

    decode_rows = [r for r in rows if r.stage == "decoding-only"]
    # The paper's headline: low-Op/B layers (MoE + attention) dominate.
    for row in decode_rows:
        assert row.low_opb_share > 0.6, f"{row.model} batch {row.batch}: {row.low_opb_share}"
    # Attention share grows with Lout (KV grows), MoE share shrinks.
    for model in ("Mixtral-47B", "GLaM-143B"):
        batch32 = [r for r in decode_rows if r.model == model and r.batch == 32]
        batch32.sort(key=lambda r: r.lout)
        attention = [r.shares.get(OpCategory.ATTENTION_DECODE, 0.0) for r in batch32]
        assert attention[-1] > attention[0]
    benchmark.extra_info["min_low_opb_share"] = min(r.low_opb_share for r in decode_rows)
