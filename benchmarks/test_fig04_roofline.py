"""Fig. 4(b): layer rooflines on the GPU — low Op/B, low utilisation."""

from conftest import run_once

from repro.experiments import fig4
from repro.hardware.specs import h100_xpu
from repro.models.config import glam, mixtral


def test_fig4b_roofline(benchmark, save_result):
    points_by_model = run_once(benchmark, fig4.run_roofline)
    save_result("fig04b_roofline", fig4.format_roofline(points_by_model))

    unit = h100_xpu()
    for key, model in (("mixtral", mixtral()), ("glam", glam())):
        points = {p.label: p for p in points_by_model[key]}
        # Attention is pinned at Op/B ~ deggrp regardless of batch.
        for batch in (32, 64, 128):
            attention = points[f"Attention @ batch {batch}"]
            assert 0.8 * model.group_degree < attention.opb < 1.3 * model.group_degree
            assert attention.memory_bound
            # Section III: attention utilisation below ~2.1% of peak.
            assert attention.achieved_tflops * 1e12 / unit.peak_flops < 0.03
        # MoE Op/B grows with batch but stays memory-bound (< ridge).
        moe_opbs = [points[f"MoE @ batch {b}"].opb for b in (32, 64, 128)]
        assert moe_opbs == sorted(moe_opbs)
        assert all(opb < unit.ridge_opb for opb in moe_opbs)
        # Section III: MoE utilisation under ~11% of peak.
        moe_util = points["MoE @ batch 128"].achieved_tflops * 1e12 / unit.peak_flops
        assert moe_util < 0.11
    benchmark.extra_info["mixtral_attention_opb"] = points_by_model["mixtral"][1].opb
