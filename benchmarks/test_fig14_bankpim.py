"""Fig. 14: Duplex vs Bank-PIM across MoE/GQA/MHA model classes."""

from conftest import run_once

from repro.experiments import fig14


def test_fig14_bank_pim(benchmark, save_result):
    rows = run_once(benchmark, fig14.run)
    save_result("fig14_bankpim", fig14.format_rows(rows))

    # Mixtral (MoE + GQA): Duplex ~1.5x Bank-PIM on average (paper: 1.49x).
    mixtral_advantage = fig14.mean_duplex_advantage(rows, "Mixtral-47B")
    assert 1.2 < mixtral_advantage < 2.0, f"Mixtral advantage {mixtral_advantage:.2f}"

    # Llama3 (GQA, deggrp 8): Duplex wins — Bank-PIM lacks compute.
    llama_advantage = fig14.mean_duplex_advantage(rows, "Llama3-70B")
    assert llama_advantage > 1.0

    # OPT (MHA, Op/B ~ 1): Bank-PIM's raw bandwidth wins.
    opt_advantage = fig14.mean_duplex_advantage(rows, "OPT-66B")
    assert opt_advantage < 1.0

    # Both PIM devices beat the GPU on every model (decode is low Op/B).
    for row in rows:
        assert row.duplex_speedup > 1.0
        assert row.bank_pim_speedup > 1.0

    # Bank-PIM's edge on Mixtral shrinks as batch (and so MoE Op/B) grows.
    batch32 = [r.bank_pim_speedup for r in rows if r.model == "Mixtral-47B" and r.batch == 32]
    batch64 = [r.bank_pim_speedup for r in rows if r.model == "Mixtral-47B" and r.batch == 64]
    assert sum(batch64) / len(batch64) < sum(batch32) / len(batch32) * 1.05

    benchmark.extra_info["mixtral_duplex_over_bankpim"] = mixtral_advantage
    benchmark.extra_info["opt_duplex_over_bankpim"] = opt_advantage
