"""Fig. 13: latency vs arrival rate (Poisson)."""

from conftest import run_once

from repro.experiments import fig13


def test_fig13_qps(benchmark, save_result):
    rows = run_once(benchmark, fig13.run)
    save_result("fig13_qps", fig13.format_rows(rows))

    by_system = {}
    for row in rows:
        by_system.setdefault(row.system, []).append(row)
    for group in by_system.values():
        group.sort(key=lambda r: r.qps)

    # Duplex's median TBT beats 2xGPU at every load (paper: "always").
    for duplex, double in zip(by_system["Duplex"], by_system["2xGPU"], strict=True):
        assert duplex.tbt_p50 < double.tbt_p50

    # The GPU saturates first: its T2FT blows up at a lower QPS than
    # Duplex's, and Duplex sustains roughly what 2xGPU sustains.
    gpu_sat = fig13.saturation_qps(rows, "GPU")
    duplex_sat = fig13.saturation_qps(rows, "Duplex")
    double_sat = fig13.saturation_qps(rows, "2xGPU")
    assert gpu_sat < duplex_sat
    assert gpu_sat < double_sat

    # Throughput rises with offered load until saturation.
    for group in by_system.values():
        assert group[-1].throughput > group[0].throughput

    benchmark.extra_info["gpu_saturation_qps"] = gpu_sat
    benchmark.extra_info["duplex_saturation_qps"] = duplex_sat
