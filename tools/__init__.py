"""Repo-local developer tooling (not shipped with the ``repro`` package).

Import these modules from the repository root (the directory that holds
``src/`` and ``tests/``) — e.g. ``python -m tools.simlint src tests``.
"""
