"""Shared rule registry: every simlint rule registers itself here.

A rule is a small class with a stable ``code`` (``SLxxx``), a kebab-case
``name``, a one-paragraph ``rationale`` (shown by ``--list-rules``), a
path scope (``applies_to``), and a ``check`` that walks a parsed module
and yields findings.  Rule modules under :mod:`tools.simlint.rules`
decorate their class with :func:`register`; importing that package
populates :data:`RULES`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Type

from tools.simlint.findings import Finding

#: code -> rule class, populated by the ``@register`` decorators in
#: ``tools.simlint.rules``.
RULES: dict[str, Type["Rule"]] = {}


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to know about one source file.

    ``path`` is the path as given on the command line, normalized to
    forward slashes; ``parts`` is its tuple of components, which is what
    scope checks should test (substring tests on the raw string match
    accidental prefixes like ``src/reprocessing``).
    """

    path: str
    parts: tuple[str, ...]
    tree: ast.Module
    lines: tuple[str, ...] = field(repr=False)

    def in_repro(self) -> bool:
        """True for files of the shipping package (``src/repro/...``)."""
        return "repro" in self.parts

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=code,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class for simlint rules; subclass and :func:`register`."""

    code: str = "SL000"
    name: str = "unnamed"
    rationale: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Path scope; default is every linted file."""
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self.applies_to(ctx):
            yield from self.check(ctx)


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULES` (codes are unique)."""
    if cls.code in RULES:
        raise ValueError(f"duplicate simlint rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules, optionally filtered by code."""
    import tools.simlint.rules  # noqa: F401  (import for registration side effect)

    codes = sorted(RULES)
    if select is not None:
        wanted = {c.strip().upper() for c in select if c.strip()}
        unknown = wanted - set(codes)
        if unknown:
            raise KeyError(f"unknown simlint rule(s): {', '.join(sorted(unknown))}")
        codes = [c for c in codes if c in wanted]
    return [RULES[c]() for c in codes]
