"""The ``python -m tools.simlint`` command line.

Exit codes: 0 clean, 1 findings (or a baseline that must shrink),
2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from tools.simlint import baseline as baseline_mod
from tools.simlint.core import LintResult, lint_paths
from tools.simlint.findings import Finding
from tools.simlint.registry import all_rules

DEFAULT_BASELINE = Path("tools/simlint/baseline.json")


def _print_findings(findings: Sequence[Finding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
        return
    for finding in findings:
        print(finding.as_github() if fmt == "github" else finding.as_text())


def _list_rules() -> None:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"       {rule.rationale}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.simlint",
        description="AST-based determinism & invariant linter for the serving stack",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint (e.g. src tests)")
    parser.add_argument(
        "--format",
        choices=("text", "github", "json"),
        default="text",
        help="finding output format (github emits workflow-command annotations)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline JSON path, or 'none' to disable (default: %(default)s if it exists)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover current findings (reasons preserved) and exit",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all registered rules)",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also lint directories named 'fixtures' (excluded by default: test fixtures violate on purpose)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m tools.simlint src tests)")

    try:
        rules = all_rules(args.select.split(",")) if args.select else all_rules()
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    try:
        result: LintResult = lint_paths(args.paths, rules, include_fixtures=args.include_fixtures)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    baseline_path: Path | None = None
    entries: list[baseline_mod.BaselineEntry] = []
    if args.baseline.lower() != "none":
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            try:
                entries = baseline_mod.load(baseline_path)
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                print(f"simlint: unreadable baseline {baseline_path}: {exc}", file=sys.stderr)
                return 2
        elif args.baseline != str(DEFAULT_BASELINE) and not args.update_baseline:
            parser.error(f"baseline file not found: {baseline_path}")

    if args.update_baseline:
        if baseline_path is None:
            parser.error("--update-baseline requires a baseline path (not 'none')")
        new_entries = baseline_mod.build(result.findings, entries)
        baseline_mod.save(baseline_path, new_entries)
        print(
            f"simlint: baseline {baseline_path} rewritten with {len(new_entries)} entr"
            f"{'y' if len(new_entries) == 1 else 'ies'} "
            f"({result.files_checked} files checked)"
        )
        return 0

    outcome = baseline_mod.apply(result.findings, entries)
    _print_findings(outcome.new_findings, args.format)
    for stale in outcome.stale_entries:
        message = (
            f"stale baseline entry {stale.rule} {stale.path} [{stale.fingerprint}] no longer "
            "fires — the baseline must shrink: delete the entry"
        )
        if args.format == "github":
            print(f"::error file={stale.path},title=simlint baseline::{message}")
        else:
            print(f"{stale.path}: {message}")

    summary = (
        f"simlint: {result.files_checked} files, {len(outcome.new_findings)} finding(s), "
        f"{outcome.grandfathered} grandfathered, {len(outcome.stale_entries)} stale baseline entr"
        f"{'y' if len(outcome.stale_entries) == 1 else 'ies'}"
    )
    print(summary, file=sys.stderr)
    return 0 if outcome.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
