"""simlint — the determinism & invariant linter for this serving stack.

Every verification tier in this repo — byte-exact golden snapshots, the
columnar<->scalar oracle, armed-but-quiescent fault byte-identity, the
off-by-default prefix equivalence anchors — is only sound because the
simulator is *exactly* deterministic: same seed, same trajectory, same
report, float for float.  That property rests on a handful of coding
rules that used to live in reviewers' heads.  simlint encodes them as
named, testable AST checks:

========  =====================  ==============================================
code      name                   contract
========  =====================  ==============================================
SL001     rng-discipline         RNG streams are constructed only at seed-
                                 plumbing sites; stdlib/legacy-global RNG never
SL002     no-wall-clock          simulation code never reads the wall clock
SL003     ordered-iteration      serving/models code never iterates a set
                                 without ``sorted(...)``
SL004     event-ordering         heap pushes carry a (time, insertion-seq)
                                 tiebreaker
SL005     frozen-events          ``*Event``/``*Report``/``*Stats`` classes are
                                 frozen (immutable observation surfaces)
SL006     mutable-default-arg    no mutable default arguments
SL007     env-freedom            simulation code never reads ``os.environ``
========  =====================  ==============================================

Run it from the repository root::

    python -m tools.simlint src tests

Suppress a finding inline — a justification is mandatory::

    self._rng = np.random.default_rng(0)  # simlint: ignore[SL001] fixture rng, never reaches an engine

Grandfathered findings live in ``tools/simlint/baseline.json``; the
runner enforces that the baseline only ever shrinks (stale entries fail
the run until they are deleted).
"""

from tools.simlint.core import Finding, LintResult, lint_paths, lint_source
from tools.simlint.registry import RULES, Rule, all_rules

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
]
