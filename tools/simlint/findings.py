"""The finding record and its output formats."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``col`` is 1-based (editor convention); ``line`` is 1-based as in
    every Python traceback.
    """

    code: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def as_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_github(self) -> str:
        """GitHub Actions workflow-command annotation."""
        message = self.message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title=simlint {self.code}::{message}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
