"""Grandfathered-finding baseline: may shrink, must never grow.

The baseline is a committed JSON file listing findings that predate the
linter.  Each entry carries a content fingerprint (rule + path +
whitespace-normalized source line), so entries survive pure line-number
churn but die the moment the offending line changes — at which point the
runner *fails* until the stale entry is deleted.  That asymmetry is the
point: new violations fail immediately, old ones can only be removed.

Schema::

    {"version": 1,
     "entries": [{"rule": "SL005", "path": "src/...", "fingerprint": "...",
                  "count": 1, "reason": "grandfathered: ..."}]}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from tools.simlint.core import META_CODE
from tools.simlint.findings import Finding

VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    count: int
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "count": self.count,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class BaselineOutcome:
    """Findings left after baseline filtering, plus shrink violations."""

    new_findings: tuple[Finding, ...]
    grandfathered: int
    stale_entries: tuple[BaselineEntry, ...]

    @property
    def clean(self) -> bool:
        return not self.new_findings and not self.stale_entries


def fingerprint(finding: Finding, lines: Sequence[str] | None = None, line_text: str = "") -> str:
    """Content fingerprint for one finding.

    ``line_text`` is the source line the finding points at (the caller
    reads it; findings do not carry source).  Whitespace-normalized so
    reformatting does not churn the baseline.
    """
    if lines is not None and 1 <= finding.line <= len(lines):
        line_text = lines[finding.line - 1]
    normalized = " ".join(line_text.split())
    digest = hashlib.sha1(f"{finding.code}|{finding.path}|{normalized}".encode("utf-8"))
    return digest.hexdigest()[:16]


def _finding_fingerprints(findings: Sequence[Finding]) -> list[tuple[Finding, str]]:
    cache: dict[str, list[str]] = {}
    out: list[tuple[Finding, str]] = []
    for finding in findings:
        if finding.path not in cache:
            try:
                cache[finding.path] = Path(finding.path).read_text(encoding="utf-8").splitlines()
            except OSError:
                cache[finding.path] = []
        out.append((finding, fingerprint(finding, cache[finding.path])))
    return out


def load(path: Path) -> list[BaselineEntry]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != VERSION:
        raise ValueError(f"unsupported baseline version {data.get('version')!r} in {path}")
    entries = []
    for raw in data.get("entries", []):
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                fingerprint=str(raw["fingerprint"]),
                count=int(raw.get("count", 1)),
                reason=str(raw.get("reason", "")),
            )
        )
    return entries


def save(path: Path, entries: Sequence[BaselineEntry]) -> None:
    payload = {
        "version": VERSION,
        "entries": [e.as_dict() for e in sorted(entries, key=lambda e: (e.path, e.rule, e.fingerprint))],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply(findings: Sequence[Finding], entries: Sequence[BaselineEntry]) -> BaselineOutcome:
    """Split findings into new vs grandfathered; detect stale entries.

    Meta findings (``SL000``) can never be grandfathered: a malformed
    suppression or parse failure is always fresh.
    """
    remaining = {(e.rule, e.path, e.fingerprint): e.count for e in entries}
    new: list[Finding] = []
    grandfathered = 0
    for finding, fp in _finding_fingerprints(findings):
        key = (finding.code, finding.path, fp)
        if finding.code != META_CODE and remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered += 1
        else:
            new.append(finding)
    stale = tuple(e for e in entries if remaining.get((e.rule, e.path, e.fingerprint), 0) > 0)
    return BaselineOutcome(
        new_findings=tuple(new), grandfathered=grandfathered, stale_entries=stale
    )


def build(findings: Sequence[Finding], previous: Sequence[BaselineEntry] = ()) -> list[BaselineEntry]:
    """Entries covering the given findings (for ``--update-baseline``).

    Reasons from ``previous`` are preserved for fingerprints that still
    fire; new fingerprints get a placeholder reason the author must edit.
    """
    reasons = {(e.rule, e.path, e.fingerprint): e.reason for e in previous}
    counts: dict[tuple[str, str, str], int] = {}
    for finding, fp in _finding_fingerprints(findings):
        if finding.code == META_CODE:
            continue
        key = (finding.code, finding.path, fp)
        counts[key] = counts.get(key, 0) + 1
    return [
        BaselineEntry(
            rule=rule,
            path=path,
            fingerprint=fp,
            count=count,
            reason=reasons.get((rule, path, fp), "grandfathered: TODO justify or fix"),
        )
        for (rule, path, fp), count in sorted(counts.items())
    ]
