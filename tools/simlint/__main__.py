"""Entry point for ``python -m tools.simlint``."""

import sys

from tools.simlint.cli import main

sys.exit(main())
