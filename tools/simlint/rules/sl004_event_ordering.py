"""SL004 event-ordering — heap entries carry an insertion-seq tiebreaker.

The engine's contract is that simultaneous events fire in *insertion*
order: every ``heapq.heappush`` site in the codebase pushes
``(time, seq, payload...)`` where ``seq`` is a monotone per-heap
counter (see ``EventClock.schedule`` and the engine's admission heap).
Without the tiebreaker, two events at the same instant compare on the
payload — which either raises (payloads are often uncomparable) or,
worse, silently orders by request contents, so an unrelated change to a
payload field reorders the simulation.  PR 8's drain-loop hang was this
exact class of bug.

The check is syntactic: a tuple literal pushed with fewer than three
elements must name a seq-ish counter in its tail.  Pushes of opaque
names are not judged (the fixture tests pin both behaviors).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.simlint.findings import Finding
from tools.simlint.names import ImportTable
from tools.simlint.registry import ModuleContext, Rule, register

_SEQ_HINTS = ("seq", "count", "counter", "pushed", "order", "tick")


def _names_a_counter(node: ast.AST) -> bool:
    """Does this tuple element look like an insertion-sequence counter?"""
    if isinstance(node, ast.Name):
        text = node.id
    elif isinstance(node, ast.Attribute):
        text = node.attr
    else:
        return False
    lowered = text.lower().lstrip("_")
    return any(hint in lowered for hint in _SEQ_HINTS)


@register
class EventOrdering(Rule):
    code = "SL004"
    name = "event-ordering"
    rationale = (
        "Events at equal timestamps must fire in insertion order, so every heap entry needs "
        "a (time, seq, payload) shape with a monotone per-heap counter as the tiebreaker; "
        "otherwise ties compare on payload contents and any field change reorders the run."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        table = ImportTable.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = table.resolve(node.func)
            if qual not in ("heapq.heappush", "heapq.heappushpop"):
                continue
            if len(node.args) < 2:
                continue
            entry = node.args[1]
            if not isinstance(entry, ast.Tuple):
                continue  # opaque value; cannot judge lexically
            if len(entry.elts) >= 3:
                continue  # (time, seq, payload...) shape
            if len(entry.elts) == 2 and _names_a_counter(entry.elts[1]):
                continue  # (time, seq) — a bare ordering ticket is fine
            yield ctx.finding(
                self.code,
                node,
                "heap entry lacks an insertion-seq tiebreaker: push "
                "(time, seq, payload) with a monotone per-heap counter, not "
                f"a {len(entry.elts)}-tuple that breaks ties on payload contents",
            )
