"""SL001 rng-discipline — RNG streams are born only at seed-plumbing sites.

The engine's byte-exact goldens and the armed-but-quiescent fault
anchors depend on every random draw coming from an explicitly seeded
``numpy.random.Generator`` that was either passed in or derived as a
named child stream (``stream_seed`` in ``serving/faults.py``).  Three
things break that:

* ``np.random.default_rng(...)`` conjured in the middle of simulation
  logic (instead of arriving through a constructor's ``seed``/``rng``
  parameter) — a hidden stream that per-call code can reorder;
* the stdlib :mod:`random` module — one process-global stream that any
  import can perturb;
* numpy's legacy global samplers (``np.random.rand``, ``np.random.seed``,
  ``RandomState``...) — the same hazard with a numpy accent.

A ``default_rng``/``SeedSequence``/``Philox``-style *construction* is
sanctioned when the enclosing function takes the seed as a parameter
(a ``seed``-ish or ``rng`` argument) — that is precisely the
constructor/seed-plumbing shape the codebase uses everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.simlint.findings import Finding
from tools.simlint.names import ImportTable, is_numpy_random, is_stdlib_random
from tools.simlint.registry import ModuleContext, Rule, register

#: numpy.random names that are seed plumbing, not draws: constructing
#: one of these from a seed *parameter* is the sanctioned idiom.
_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "Philox",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "SFC64",
    }
)

_SEEDY_PARAM = ("seed", "rng", "random_state")


def _has_seed_param(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = fn.args
    names = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.arg not in ("self", "cls")
    ]
    return any(
        name == wanted or name.endswith(f"_{wanted}") or name.startswith(f"{wanted}_")
        for name in names
        for wanted in _SEEDY_PARAM
    )


@register
class RngDiscipline(Rule):
    code = "SL001"
    name = "rng-discipline"
    rationale = (
        "RNG streams must be constructed from an explicit seed parameter (or a stream_seed "
        "child) and passed down; stdlib random and numpy's legacy global samplers are banned "
        "outright.  Ad-hoc streams silently change draw order and break byte-exact replay."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        table = ImportTable.of(ctx.tree)
        # Map every node to its nearest enclosing function, so a
        # default_rng call can be judged against that function's params.
        enclosing: dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef | None] = {}

        def fill(node: ast.AST, fn: ast.FunctionDef | ast.AsyncFunctionDef | None) -> None:
            for child in ast.iter_child_nodes(node):
                here = child if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) else fn
                enclosing[child] = here
                fill(child, here)

        enclosing[ctx.tree] = None
        fill(ctx.tree, None)

        callees = {id(node.func) for node in ast.walk(ctx.tree) if isinstance(node, ast.Call)}

        for node in ast.walk(ctx.tree):
            qual = table.resolve(node)
            if qual is None or qual in ("random", "numpy.random", "numpy"):
                continue  # unresolvable or a bare module reference
            if is_stdlib_random(qual):
                yield ctx.finding(
                    self.code,
                    node,
                    f"stdlib `{qual}` is a process-global RNG stream; take a seeded "
                    "numpy Generator as a parameter instead",
                )
                continue
            if not is_numpy_random(qual):
                continue
            leaf = qual.rsplit(".", 1)[-1]
            if leaf in _CONSTRUCTORS:
                if id(node) not in callees:
                    continue  # annotation or alias, not a stream being minted
                fn = enclosing.get(node)
                if fn is not None and _has_seed_param(fn):
                    continue  # sanctioned: seed arrives as a parameter
                yield ctx.finding(
                    self.code,
                    node,
                    f"`{qual}` outside a seed-plumbing site: construct RNGs only in a "
                    "function that receives the seed (e.g. `def __init__(..., seed)`), "
                    "or derive a named child via stream_seed(...)",
                )
            else:
                yield ctx.finding(
                    self.code,
                    node,
                    f"legacy global sampler `{qual}` shares one hidden stream across the "
                    "process; use an explicitly seeded Generator passed as a parameter",
                )
