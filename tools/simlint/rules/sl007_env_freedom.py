"""SL007 env-freedom — simulation code never reads the process environment.

``os.environ``/``os.getenv`` make a result depend on invisible host
state: the same (config, seed) pair prices differently on two machines
and no golden can catch it locally.  Configuration reaches the
simulator as explicit arguments.  Experiment *drivers* (``experiments/``)
may read the environment — worker counts, output dirs — because they sit
outside the priced simulation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.simlint.findings import Finding
from tools.simlint.names import ImportTable
from tools.simlint.registry import ModuleContext, Rule, register

_BANNED = frozenset({"os.environ", "os.getenv", "os.environb", "os.putenv"})


@register
class EnvFreedom(Rule):
    code = "SL007"
    name = "env-freedom"
    rationale = (
        "Reading os.environ couples simulation output to invisible host state; configuration "
        "must arrive as explicit arguments.  Experiment drivers are exempt."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro() and "experiments" not in ctx.parts

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        table = ImportTable.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            qual = table.resolve(node)
            if qual in _BANNED:
                yield ctx.finding(
                    self.code,
                    node,
                    f"`{qual}` read in simulation code; pass configuration as explicit "
                    "arguments instead of host environment state",
                )
