"""SL005 frozen-events — observation surfaces are immutable.

Classes named ``*Event``, ``*Report``, or ``*Stats`` are the simulator's
observation surface: they cross layer boundaries (observers, pooled
fleet reports, golden snapshots) and are frequently held by test
assertions long after the engine moved on.  A mutable one invites
exactly the aliasing bug the golden tier cannot see coming: some later
stage mutates an object a report already references, and the "snapshot"
silently changes after the fact.  Such classes must be frozen
dataclasses (or NamedTuples / Enums), or expose no mutable public
state at all.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.simlint.findings import Finding
from tools.simlint.registry import ModuleContext, Rule, register

_SUFFIX = re.compile(r"(Event|Report|Stats)$")


def _dataclass_decorator(cls: ast.ClassDef) -> tuple[bool, bool]:
    """(is_dataclass, is_frozen) from the decorator list."""
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", None)
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                    frozen = bool(kw.value.value)
        return True, frozen
    return False, False


def _base_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


_IMMUTABLE_BASES = frozenset({"NamedTuple", "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})


def _public_mutable_fields(cls: ast.ClassDef) -> list[tuple[str, ast.AST]]:
    """Public attributes a plain (non-dataclass) class exposes mutably."""
    fields: list[tuple[str, ast.AST]] = []
    seen: set[str] = set()
    for stmt in cls.body:  # class-level annotated/plain assignments
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        for target in targets:
            public = isinstance(target, ast.Name) and not target.id.startswith("_")
            if public and target.id not in seen:
                seen.add(target.id)
                fields.append((target.id, stmt))
    for node in ast.walk(cls):  # self.<public> assignments in any method
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and not target.attr.startswith("_")
            and target.attr not in seen
        ):
            seen.add(target.attr)
            fields.append((target.attr, node))
    return fields


@register
class FrozenEvents(Rule):
    code = "SL005"
    name = "frozen-events"
    rationale = (
        "*Event/*Report/*Stats classes cross layer boundaries and get held by observers and "
        "snapshots; a mutable one can change after a report already references it.  Freeze "
        "them (dataclass(frozen=True), NamedTuple) or keep all state private."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _SUFFIX.search(node.name):
                continue
            if _IMMUTABLE_BASES & _base_names(node):
                continue
            is_dc, frozen = _dataclass_decorator(node)
            if is_dc:
                if not frozen:
                    yield ctx.finding(
                        self.code,
                        node,
                        f"`{node.name}` is an observation-surface class but its dataclass "
                        "is not frozen=True; freeze it (accumulate in private counters and "
                        "snapshot, if it is currently mutated in place)",
                    )
                continue
            fields = _public_mutable_fields(node)
            if fields:
                names = ", ".join(name for name, _ in fields[:4])
                yield ctx.finding(
                    self.code,
                    node,
                    f"`{node.name}` exposes mutable public field(s) {names}; observation "
                    "surfaces must be frozen dataclasses/NamedTuples or keep state private",
                )
