"""SL003 ordered-iteration — never iterate a set without ``sorted(...)``.

Sets (and frozensets) iterate in hash order.  For strings that order is
randomized per process (PYTHONHASHSEED); for ints it is an accident of
the current CPython implementation.  Any pricing, scheduling, or
reporting path that walks a set can therefore visit requests, experts,
or replicas in a different order on a different run — reordering float
accumulation, RNG draw order, and tie-breaks, all of which the golden
and oracle tiers pin byte-exactly.  The rule is scoped to ``serving/``
and ``models/`` (the paths whose iteration order reaches reports).

Allowed without ``sorted``: membership tests, ``len``, and genuinely
order-insensitive reductions (``any``/``all``/``min``/``max``).
``sum`` over a set is *not* exempt — float addition is not associative.

Detection is lexical: an expression counts as a set when it is a set
literal/comprehension, a ``set(...)``/``frozenset(...)`` call, a set
operator over one, a local previously bound to one, a name annotated
``set[...]``-ish, or a ``self`` attribute bound/annotated that way
anywhere in the class.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.simlint.findings import Finding
from tools.simlint.registry import ModuleContext, Rule, register

_SET_ANNOTATION = re.compile(
    r"^(typing\.)?(Optional\[)?\s*(set|frozenset|Set|FrozenSet|AbstractSet|MutableSet)\b"
)

#: calls that consume their (sole) iterable argument order-insensitively.
_ORDER_FREE_CALLS = frozenset({"len", "any", "all", "min", "max", "sorted", "set", "frozenset"})

#: calls that materialize or fold their argument in iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "sum", "enumerate", "iter", "reversed"})

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _annotation_is_set(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return False
    return bool(_SET_ANNOTATION.match(text.strip()))


class _ScopeSets:
    """Names/attributes known to hold sets, per lexical scope."""

    def __init__(self) -> None:
        self.module: set[str] = set()
        self.local: set[str] = set()
        self.self_attrs: set[str] = set()

    def knows_name(self, name: str) -> bool:
        return name in self.local or name in self.module

    def knows_self_attr(self, attr: str) -> bool:
        return attr in self.self_attrs


def _is_set_expr(node: ast.AST, scope: _ScopeSets) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, scope)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        return _is_set_expr(node.left, scope) or _is_set_expr(node.right, scope)
    if isinstance(node, ast.Name):
        return scope.knows_name(node.id)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return scope.knows_self_attr(node.attr)
    return False


def _collect_bindings(body: list[ast.stmt], into: set[str]) -> None:
    """Names bound to set expressions / annotations in a statement list."""
    probe = _ScopeSets()
    probe.local = into  # grows as we discover; ordering of simple bodies is top-down
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are collected separately
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, probe):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        into.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and (
                    _annotation_is_set(node.annotation)
                    or (node.value is not None and _is_set_expr(node.value, probe))
                )
            ):
                into.add(node.target.id)


def _collect_self_attrs(cls: ast.ClassDef) -> set[str]:
    """``self.<attr>`` names bound/annotated as sets anywhere in a class."""
    attrs: set[str] = set()
    probe = _ScopeSets()
    for node in ast.walk(cls):
        target: ast.AST | None = None
        value: ast.AST | None = None
        annotation: ast.AST | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, node.annotation
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and (
                _annotation_is_set(annotation)
                or (value is not None and _is_set_expr(value, probe))
            )
        ):
            attrs.add(target.attr)
    return attrs


@register
class OrderedIteration(Rule):
    code = "SL003"
    name = "ordered-iteration"
    rationale = (
        "Iterating a set visits elements in hash order, which differs across processes for "
        "strings and is an implementation accident for everything else.  Wrap the iteration "
        "in sorted(...) (the order becomes part of the contract) or justify a suppression."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro() and ("serving" in ctx.parts or "models" in ctx.parts)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        module_sets: set[str] = set()
        _collect_bindings(ctx.tree.body, module_sets)

        def class_of(node: ast.AST) -> ast.ClassDef | None:
            cursor = parents.get(node)
            while cursor is not None:
                if isinstance(cursor, ast.ClassDef):
                    return cursor
                cursor = parents.get(cursor)
            return None

        self_attr_cache: dict[ast.ClassDef, set[str]] = {}

        def scope_for(node: ast.AST) -> _ScopeSets:
            scope = _ScopeSets()
            scope.module = module_sets
            cursor = parents.get(node)
            fn: ast.FunctionDef | ast.AsyncFunctionDef | None = None
            while cursor is not None:
                if fn is None and isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = cursor
                cursor = parents.get(cursor)
            if fn is not None:
                local: set[str] = set()
                _collect_bindings(fn.body, local)
                for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
                    if _annotation_is_set(arg.annotation):
                        local.add(arg.arg)
                scope.local = local
            cls = class_of(node)
            if cls is not None:
                if cls not in self_attr_cache:
                    self_attr_cache[cls] = _collect_self_attrs(cls)
                scope.self_attrs = self_attr_cache[cls]
            return scope

        def flag(node: ast.AST, what: str) -> Finding:
            return ctx.finding(
                self.code,
                node,
                f"iteration over a set ({what}) is hash-ordered and non-reproducible; "
                "wrap it in sorted(...) or justify a suppression",
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, scope_for(node)):
                    yield flag(node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                scope = scope_for(node)
                for gen in node.generators:
                    if not _is_set_expr(gen.iter, scope):
                        continue
                    parent = parents.get(node)
                    if (
                        isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp))
                        and isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Name)
                        and parent.func.id in _ORDER_FREE_CALLS
                        and parent.args
                        and parent.args[0] is node
                    ):
                        continue  # e.g. any(x.done for x in pending_ids)
                    yield flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in _ORDER_SENSITIVE_CALLS:
                    if node.args and _is_set_expr(node.args[0], scope_for(node)):
                        yield flag(node.args[0], f"{node.func.id}()")
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("map", "filter")
                    and len(node.args) >= 2
                    and _is_set_expr(node.args[1], scope_for(node))
                ):
                    yield flag(node.args[1], f"{node.func.id}()")
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0], scope_for(node))
                ):
                    yield flag(node.args[0], "str.join()")
