"""SL006 mutable-default-arg — default values must not be shared state.

A mutable default is evaluated once at ``def`` time and shared by every
call; in a simulator that means one request's bookkeeping leaks into the
next run's, the purest form of cross-run nondeterminism (PR 5's leaked
evict reservations were a cousin of this bug).  Use ``None`` and
materialize inside the function, or a frozen/tuple default.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.simlint.findings import Finding
from tools.simlint.registry import ModuleContext, Rule, register

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "OrderedDict", "deque"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else getattr(node.func, "id", None)
        )
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultArg(Rule):
    code = "SL006"
    name = "mutable-default-arg"
    rationale = (
        "Mutable defaults are evaluated once and shared across calls — state leaks between "
        "requests and between runs.  Default to None (or a tuple) and build inside."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [d for d in node.args.defaults if d is not None]
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_default(default):
                    where = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        self.code,
                        default,
                        f"mutable default argument in `{where}` is shared across calls; "
                        "use None and materialize inside, or a tuple",
                    )
