"""Rule modules; importing this package registers every rule.

One module per rule keeps each visitor small and lets the fixture tests
target a single rule in isolation.
"""

from tools.simlint.rules import (  # noqa: F401  (registration side effects)
    sl001_rng_discipline,
    sl002_no_wall_clock,
    sl003_ordered_iteration,
    sl004_event_ordering,
    sl005_frozen_events,
    sl006_mutable_default_arg,
    sl007_env_freedom,
)
