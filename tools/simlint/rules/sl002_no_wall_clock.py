"""SL002 no-wall-clock — simulation code never reads the host clock.

Every latency, deadline, and energy figure in the simulator comes off
the *virtual* clock (engine ``now_s``); a single ``time.time()`` in a
pricing or scheduling path makes reports machine- and load-dependent,
which the byte-exact golden tier cannot tolerate.  The only sanctioned
wall-clock readers are the experiment driver's progress timer
(``experiments/run_all.py``) and the perf harness under ``benchmarks/``
(which measures the host on purpose and is outside ``src/repro``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.simlint.findings import Finding
from tools.simlint.names import ImportTable
from tools.simlint.registry import ModuleContext, Rule, register

_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class NoWallClock(Rule):
    code = "SL002"
    name = "no-wall-clock"
    rationale = (
        "Simulation results must be a pure function of (config, seed); reading the host "
        "clock couples them to machine speed and load.  Time comes from the engine's "
        "virtual clock.  Exempt: experiments/run_all.py progress timing."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not ctx.in_repro():
            return False
        if "benchmarks" in ctx.parts:
            return False
        return not ctx.path.endswith("experiments/run_all.py")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        table = ImportTable.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            qual = table.resolve(node)
            if qual in _BANNED:
                yield ctx.finding(
                    self.code,
                    node,
                    f"wall-clock read `{qual}` in simulation code; use the engine's "
                    "virtual clock (stage times / now_s) instead",
                )
