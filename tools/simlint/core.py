"""File discovery, suppression handling, and the per-file lint driver."""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from tools.simlint.findings import Finding
from tools.simlint.registry import ModuleContext, Rule, all_rules

#: ``SL000`` is reserved for meta findings (parse failures, malformed or
#: unjustified suppressions); it cannot itself be suppressed.
META_CODE = "SL000"

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore\[([^\]]*)\]\s*(.*)$")
_CODE_RE = re.compile(r"^SL\d{3}$")

#: Directory names never descended into.  ``fixtures`` is excluded by
#: default because the simlint test fixtures *deliberately* violate the
#: rules (pass ``include_fixtures=True`` to lint them anyway).
EXCLUDED_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".venv", "build", "dist"}
)
FIXTURE_DIR_NAME = "fixtures"


@dataclass(frozen=True)
class Suppression:
    """One ``# simlint: ignore[...]`` comment."""

    line: int  # line the comment sits on
    covers: int  # line whose findings it silences
    codes: tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class LintResult:
    """Outcome of linting a set of paths (before baseline filtering)."""

    findings: tuple[Finding, ...]
    files_checked: int


def parse_suppressions(lines: Sequence[str]) -> tuple[list[Suppression], list[Finding]]:
    """Extract inline suppressions; malformed ones become SL000 findings.

    A suppression on a code line covers that line; a comment-only line
    covers the next line.  The justification after the bracket is
    mandatory — an unexplained suppression is a finding, not a silencer.

    Comments are found with :mod:`tokenize` (falling back to a line scan
    if tokenization fails), so the syntax appearing inside a string
    literal — docs, test fixtures, this linter's own messages — is inert.
    """
    suppressions: list[Suppression] = []
    problems: list[Finding] = []

    def meta(path_line: int, message: str) -> Finding:
        return Finding(code=META_CODE, path="", line=path_line, col=1, message=message)

    comments: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO("\n".join(lines) + "\n").readline)
        comments = [(t.start[0], t.string) for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [(n, line) for n, line in enumerate(lines, start=1) if "#" in line]

    for lineno, raw in comments:
        match = _SUPPRESS_RE.search(raw)
        if match is None:
            continue
        codes = tuple(c.strip().upper() for c in match.group(1).split(",") if c.strip())
        reason = match.group(2).strip()
        bad = [c for c in codes if not _CODE_RE.fullmatch(c)]
        if not codes or bad:
            problems.append(
                meta(lineno, f"malformed suppression: expected ignore[SLxxx, ...], got {raw.strip()!r}")
            )
            continue
        if META_CODE in codes:
            problems.append(meta(lineno, f"{META_CODE} is a meta finding and cannot be suppressed"))
            continue
        if not reason:
            problems.append(
                meta(
                    lineno,
                    f"suppression of {', '.join(codes)} missing justification "
                    "(write `# simlint: ignore[SLxxx] why this is sound`)",
                )
            )
            continue
        comment_only = lines[lineno - 1].strip().startswith("#")
        covers = lineno + 1 if comment_only else lineno
        suppressions.append(Suppression(line=lineno, covers=covers, codes=codes, reason=reason))
    return suppressions, problems


def apply_suppressions(
    findings: Sequence[Finding], suppressions: Sequence[Suppression], path: str
) -> list[Finding]:
    """Silence suppressed findings; flag suppressions that silence nothing."""
    kept: list[Finding] = []
    used: set[int] = set()
    for finding in findings:
        silencers = [
            i
            for i, s in enumerate(suppressions)
            if s.covers == finding.line and finding.code in s.codes
        ]
        if silencers and finding.code != META_CODE:
            used.update(silencers)
        else:
            kept.append(finding)
    for i, s in enumerate(suppressions):
        if i not in used:
            kept.append(
                Finding(
                    code=META_CODE,
                    path=path,
                    line=s.line,
                    col=1,
                    message=(
                        f"unused suppression of {', '.join(s.codes)} — "
                        "nothing fires on the covered line; delete it"
                    ),
                )
            )
    return kept


def lint_source(path: str, source: str, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one module's source text; returns sorted findings."""
    norm = path.replace("\\", "/")
    parts = tuple(p for p in norm.split("/") if p not in ("", "."))
    try:
        tree = ast.parse(source, filename=norm)
    except SyntaxError as exc:
        return [
            Finding(
                code=META_CODE,
                path=norm,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    lines = tuple(source.splitlines())
    ctx = ModuleContext(path=norm, parts=parts, tree=tree, lines=lines)
    active = list(rules) if rules is not None else all_rules()

    raw: list[Finding] = []
    for rule in active:
        raw.extend(rule.run(ctx))

    suppressions, problems = parse_suppressions(lines)
    findings = apply_suppressions(raw, suppressions, norm)
    for p in problems:
        findings.append(Finding(code=p.code, path=norm, line=p.line, col=p.col, message=p.message))
    return sorted(findings, key=Finding.sort_key)


def discover(paths: Iterable[str | Path], include_fixtures: bool = False) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of .py files."""
    excluded = set(EXCLUDED_DIR_NAMES)
    if not include_fixtures:
        excluded.add(FIXTURE_DIR_NAME)
    files: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_file():
            if p.suffix == ".py":
                files.add(p)
        elif p.is_dir():
            for candidate in p.rglob("*.py"):
                if not excluded.intersection(candidate.parts):
                    files.add(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
    return sorted(files)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    include_fixtures: bool = False,
) -> LintResult:
    """Lint every .py file under ``paths``."""
    files = discover(paths, include_fixtures=include_fixtures)
    findings: list[Finding] = []
    for file in files:
        findings.extend(lint_source(file.as_posix(), file.read_text(encoding="utf-8"), rules))
    return LintResult(findings=tuple(sorted(findings, key=Finding.sort_key)), files_checked=len(files))
