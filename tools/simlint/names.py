"""Import-aware dotted-name resolution shared by the rule visitors.

Rules ban *module-level* names (``numpy.random.default_rng``,
``time.perf_counter``), but source code refers to them through whatever
aliases its imports introduce (``np.random.default_rng``, ``from time
import perf_counter as pc``).  :class:`ImportTable` records the aliases a
module defines; :meth:`ImportTable.resolve` maps an ``ast`` expression
back to its fully-qualified dotted name, or ``None`` when the expression
is not a plain dotted reference rooted at an import (locals, attribute
access on objects, and so on).

This is intentionally a *lexical* approximation — no type inference, no
cross-module analysis.  A determinism linter wants exactly that: flag
syntactic uses of the banned names, never guess about dynamic dispatch.
"""

from __future__ import annotations

import ast


class ImportTable(ast.NodeVisitor):
    """Alias -> fully-qualified module/name map for one module."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    @classmethod
    def of(cls, tree: ast.Module) -> "ImportTable":
        table = cls()
        table.visit(tree)
        return table

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.aliases[name] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:  # relative imports stay package-local
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted name of ``node``, or None."""
        chain: list[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            chain.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self.aliases.get(cursor.id)
        if root is None:
            return None
        chain.append(root)
        return ".".join(reversed(chain))

    def resolve_call(self, node: ast.AST) -> str | None:
        """Resolve the callee of a call expression (else None)."""
        if isinstance(node, ast.Call):
            return self.resolve(node.func)
        return None


# numpy's submodule alias: ``import numpy as np`` makes ``np.random``
# resolve to ``numpy.random`` through the attribute chain above, and
# ``from numpy import random`` resolves uses of that (shadowing!) name
# to ``numpy.random`` rather than the stdlib module of the same name.
def is_stdlib_random(qualname: str) -> bool:
    """True for ``random`` / ``random.<anything>`` (the stdlib module)."""
    return qualname == "random" or qualname.startswith("random.")


def is_numpy_random(qualname: str) -> bool:
    return qualname == "numpy.random" or qualname.startswith("numpy.random.")
