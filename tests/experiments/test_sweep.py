"""Tests for the process-pool sweep runner."""

import pytest

from repro.errors import ConfigError
from repro.experiments.sweep import default_workers, run_sweep


def _square_plus(x, offset=0):
    """Module-level so the process pool can pickle it by reference."""
    return x * x + offset


def _explode(x):
    raise ValueError(f"boom {x}")


PARAMS = [{"x": 1}, {"x": 2, "offset": 10}, {"x": 3}]


class TestRunSweep:
    def test_serial_preserves_order(self):
        assert run_sweep(_square_plus, PARAMS, workers=1) == [1, 14, 9]

    def test_zero_workers_runs_serially(self):
        assert run_sweep(_square_plus, PARAMS, workers=0) == [1, 14, 9]

    def test_pool_preserves_order(self):
        assert run_sweep(_square_plus, PARAMS, workers=2) == [1, 14, 9]

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_empty_sweep(self):
        assert run_sweep(_square_plus, [], workers=2) == []

    def test_single_point_stays_in_process(self):
        assert run_sweep(_square_plus, [{"x": 4}], workers=8) == [16]

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigError):
            run_sweep(_square_plus, PARAMS, workers=-1)

    def test_serial_error_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_sweep(_explode, [{"x": 1}, {"x": 2}], workers=1)

    def test_pool_error_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_sweep(_explode, [{"x": 1}, {"x": 2}], workers=2)
