"""Tests for the process-pool sweep runner."""

import pytest

from repro.errors import ConfigError
from repro.experiments.sweep import default_workers, run_sweep, scenario_param_sets
from repro.serving.scenarios import scenario_names


def _square_plus(x, offset=0):
    """Module-level so the process pool can pickle it by reference."""
    return x * x + offset


def _explode(x):
    raise ValueError(f"boom {x}")


PARAMS = [{"x": 1}, {"x": 2, "offset": 10}, {"x": 3}]


class TestRunSweep:
    def test_serial_preserves_order(self):
        assert run_sweep(_square_plus, PARAMS, workers=1) == [1, 14, 9]

    def test_zero_workers_runs_serially(self):
        assert run_sweep(_square_plus, PARAMS, workers=0) == [1, 14, 9]

    def test_pool_preserves_order(self):
        assert run_sweep(_square_plus, PARAMS, workers=2) == [1, 14, 9]

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_empty_sweep(self):
        assert run_sweep(_square_plus, [], workers=2) == []

    def test_single_point_stays_in_process(self):
        assert run_sweep(_square_plus, [{"x": 4}], workers=8) == [16]

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigError):
            run_sweep(_square_plus, PARAMS, workers=-1)

    def test_serial_error_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_sweep(_explode, [{"x": 1}, {"x": 2}], workers=1)

    def test_pool_error_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_sweep(_explode, [{"x": 1}, {"x": 2}], workers=2)


def _scenario_echo(scenario, tag=""):
    """Module-level pool-picklable worker: proves names cross the boundary."""
    from repro.serving.scenarios import get_scenario

    return (scenario, get_scenario(scenario).mean_qps > 0, tag)


class TestScenarioParamSets:
    def test_defaults_to_every_registered_scenario(self):
        points = scenario_param_sets(seed=7)
        assert [p["scenario"] for p in points] == list(scenario_names())
        assert all(p["seed"] == 7 for p in points)

    def test_explicit_subset_preserves_order(self):
        points = scenario_param_sets(["bursty-chat", "steady-chat"])
        assert [p["scenario"] for p in points] == ["bursty-chat", "steady-chat"]

    def test_unknown_scenario_fails_before_the_pool(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            scenario_param_sets(["no-such-scenario"])

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigError):
            scenario_param_sets([])

    def test_names_survive_the_process_pool(self):
        points = scenario_param_sets(["steady-chat", "bursty-chat"], tag="t")
        results = run_sweep(_scenario_echo, points, workers=2)
        assert results == [("steady-chat", True, "t"), ("bursty-chat", True, "t")]
