"""Fast integration tests for the experiment modules.

Each experiment runs on a reduced grid (the benchmarks run the full grids);
these tests check the plumbing and the qualitative shapes survive the
reduction.
"""

import pytest

from repro.experiments import (
    area,
    fig4,
    fig5,
    fig8,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table1,
)
from repro.experiments.presets import eval_systems, latency_limits, model_by_key
from repro.errors import ConfigError
from repro.serving.simulator import SimulationLimits

FAST = SimulationLimits(max_stages=120, warmup_stages=8)


class TestPresets:
    def test_eval_systems_for_moe_model(self):
        systems = eval_systems(model_by_key("mixtral"))
        assert set(systems) == {"GPU", "2xGPU", "Duplex", "Duplex+PE", "Duplex+PE+ET"}

    def test_eval_systems_for_dense_model(self):
        systems = eval_systems(model_by_key("llama3"))
        assert "Duplex+PE+ET" not in systems

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            model_by_key("gpt5")

    def test_latency_limits_scale_with_lout(self):
        assert latency_limits(2048).max_stages > latency_limits(512).max_stages


class TestTable1:
    def test_rows_and_formatting(self):
        rows = table1.run()
        assert len(rows) == 5
        text = table1.format_rows(rows)
        assert "Mixtral-47B" in text


class TestFig4:
    def test_breakdown_reduced_grid(self):
        rows = fig4.run_breakdown(batches=(32,), louts={"mixtral": (1024,), "glam": (1024,)})
        assert len(rows) == 4
        assert all(abs(sum(r.shares.values()) - 1.0) < 1e-6 for r in rows)
        assert fig4.format_breakdown(rows)

    def test_roofline_has_three_series(self):
        points = fig4.run_roofline(model_keys=("mixtral",))["mixtral"]
        labels = {p.label.split(" @ ")[0] for p in points}
        assert labels == {"FC", "Attention", "MoE"}
        assert fig4.format_roofline({"mixtral": points})


class TestFig5:
    def test_stage_ratio_reduced(self):
        rows = fig5.run_stage_ratio(pairs=((1024, 1024),), batches=(32,), limits=FAST)
        assert rows[0].decoding_only_ratio > 0.9

    def test_hetero_throughput_reduced(self):
        rows = fig5.run_hetero_throughput(pairs=((4096, 4096),), limits=FAST)
        assert rows[0].normalized < 1.0
        assert fig5.format_hetero_throughput(rows)


class TestFig8:
    def test_matches_paper_within_tolerance(self):
        study = fig8.run()
        assert fig8.crossover_opb(study) == 8
        assert fig8.format_rows(study)


class TestFig11:
    def test_single_config(self):
        rows = fig11.run(
            model_keys=("mixtral",),
            batches=(32,),
            pairs_by_model={"mixtral": ((1024, 1024),)},
            limits=FAST,
        )
        assert len(rows) == 1
        normalized = rows[0].normalized()
        assert normalized["Duplex+PE+ET"] > 2.0
        assert fig11.peak_speedup(rows) == normalized["Duplex+PE+ET"]
        assert fig11.format_rows(rows)


class TestFig12:
    def test_single_pair(self):
        rows = fig12.run(pairs=((512, 512),))
        reduction = fig12.median_tbt_reduction(rows)
        assert 0.3 < reduction < 0.8
        assert fig12.format_rows(rows)


class TestFig13:
    def test_two_rates(self):
        rows = fig13.run(qps_values=(4.0, 16.0), limits=FAST)
        assert len(rows) == 6
        assert fig13.format_rows(rows)

    def test_saturation_detection(self):
        # In a short window the backlog has not grown 10x yet; a softer
        # blowup factor still identifies the overloaded GPU.
        rows = fig13.run(qps_values=(4.0, 16.0),
                         limits=SimulationLimits(max_stages=400, warmup_stages=16))
        assert fig13.saturation_qps(rows, "GPU", blowup_factor=1.5) <= 16.0
        assert fig13.saturation_qps(rows, "2xGPU", blowup_factor=1.5) == float("inf")

    def test_scenario_override_sweeps_registered_traffic(self):
        # The QPS grid can sweep any registered scenario; each point
        # rescales the scenario's arrival process to the target rate.
        rows = fig13.run(
            qps_values=(6.0,), max_batch=32, limits=FAST, memoize=True,
            scenario="bursty-chat",
        )
        assert len(rows) == 3
        assert all(r.qps == 6.0 for r in rows)
        assert all(r.throughput > 0 for r in rows)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            fig13.run(qps_values=(6.0,), limits=FAST, scenario="no-such-scenario")


class TestFig14:
    def test_opt_prefers_bank_pim(self):
        rows = fig14.run(model_keys=("opt",), batches=(32,), limits=FAST)
        assert fig14.mean_duplex_advantage(rows, "OPT-66B") < 1.05
        assert fig14.format_rows(rows)


class TestFig15:
    def test_energy_savings_positive(self):
        rows = fig15.run(
            model_keys=("mixtral",),
            batches=(32,),
            pairs_by_model={"mixtral": ((1024, 1024),)},
            limits=FAST,
        )
        assert fig15.energy_savings(rows, "Mixtral-47B") > 0.1
        assert fig15.format_rows(rows)

    def test_component_folding_covers_everything(self):
        rows = fig15.run(
            model_keys=("mixtral",),
            batches=(32,),
            pairs_by_model={"mixtral": ((512, 512),)},
            limits=FAST,
        )
        for row in rows:
            assert row.total > 0
            assert set(row.joules_per_token) == set(fig15.COMPONENTS)


class TestFig16:
    def test_single_pair(self):
        rows = fig16.run(pairs=((1024, 1024),), batch=32, limits=FAST)
        assert rows[0].split_throughput_ratio < 1.0
        assert fig16.format_rows(rows)


class TestArea:
    def test_report_numbers(self):
        report = area.run()
        assert report.total_mm2 == pytest.approx(17.80, abs=0.05)
        assert area.format_report(report)
