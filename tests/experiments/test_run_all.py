"""Smoke test for the run-all CLI plumbing."""

from repro.experiments import run_all


def test_artefact_registry_is_complete():
    names = [name for name, _ in run_all._artefacts()]
    # Every paper artefact, the four ablations, and the five serving
    # sweeps (capacity planning, memory-pressure paging, sharded fleets,
    # chaos recovery, prefix reuse).
    assert len(names) == 23
    assert len(set(names)) == 23
    for figure in ("fig08", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"):
        assert any(name.startswith(figure) for name in names)
    assert "capacity_planning" in names
    assert "paging_policies" in names
    assert "sharded_fleet" in names
    assert "chaos_recovery" in names
    assert "prefix_reuse" in names


def test_workers_flag_reaches_the_registry(tmp_path, monkeypatch):
    captured = {}

    def fake_artefacts(workers=None):
        captured["workers"] = workers
        return iter([])

    monkeypatch.setattr(run_all, "_artefacts", fake_artefacts)
    assert run_all.main([str(tmp_path), "--workers", "2"]) == 0
    assert captured["workers"] == 2


def test_main_writes_fast_artefacts(tmp_path, monkeypatch):
    # Restrict the registry to the cheap artefacts for the smoke test.
    fast = [
        entry
        for entry in run_all._artefacts()
        if entry[0] in ("table1_models", "fig08_edap", "area_overhead")
    ]
    monkeypatch.setattr(run_all, "_artefacts", lambda: iter(fast))
    assert run_all.main([str(tmp_path)]) == 0
    assert (tmp_path / "table1_models.txt").exists()
    assert (tmp_path / "fig08_edap.txt").read_text()
