"""Integration tests: full serving simulations reproducing paper effects."""

import pytest

from repro.core.system import duplex_system, gpu_system, hetero_system
from repro.errors import CapacityError
from repro.models.config import mixtral
from repro.serving.generator import WorkloadSpec
from repro.serving.simulator import ServingSimulator, SimulationLimits
from repro.serving.split import SplitServingSimulator, split_partitions


LIMITS = SimulationLimits(max_stages=300, warmup_stages=8)


def simulate(system, lin=1024, lout=512, batch=32, qps=None, limits=LIMITS, seed=1):
    spec = WorkloadSpec(lin_mean=lin, lout_mean=lout, qps=qps)
    sim = ServingSimulator(system, mixtral(), spec, max_batch=batch, seed=seed)
    return sim.run(limits)


class TestClosedLoopBasics:
    def test_throughput_positive(self):
        report = simulate(gpu_system(mixtral()))
        assert report.throughput_tokens_per_s > 0

    def test_decoding_only_dominates(self):
        # Fig. 5(a): almost all stages are decoding-only.
        report = simulate(gpu_system(mixtral()))
        assert report.decoding_only_stage_ratio > 0.9

    def test_duplex_beats_gpu_throughput(self):
        gpu = simulate(gpu_system(mixtral()))
        duplex = simulate(duplex_system(mixtral(), co_processing=True, expert_tensor_parallel=True))
        assert 1.5 < duplex.throughput_tokens_per_s / gpu.throughput_tokens_per_s < 4.0

    def test_duplex_cuts_median_tbt(self):
        gpu = simulate(gpu_system(mixtral()))
        duplex = simulate(duplex_system(mixtral()))
        assert duplex.tbt_p50_s < 0.6 * gpu.tbt_p50_s

    def test_energy_per_token_lower_on_duplex(self):
        gpu = simulate(gpu_system(mixtral()))
        duplex = simulate(duplex_system(mixtral()))
        assert duplex.energy_per_token_j < gpu.energy_per_token_j

    def test_t2ft_recorded_without_completions(self):
        # Closed loop with long outputs: completions are rare, but T2FT
        # samples appear as soon as replacements prefill.
        report = simulate(gpu_system(mixtral()), lout=4096)
        assert report.t2ft_p50_s > 0

    def test_reproducible_with_seed(self):
        a = simulate(gpu_system(mixtral()), seed=7)
        b = simulate(gpu_system(mixtral()), seed=7)
        assert a.throughput_tokens_per_s == b.throughput_tokens_per_s


class TestHeteroTail:
    def test_hetero_improves_median_but_hurts_tail(self):
        gpu = simulate(gpu_system(mixtral()), lin=2048, lout=512)
        hetero = simulate(hetero_system(mixtral()), lin=2048, lout=512)
        assert hetero.tbt_p50_s < gpu.tbt_p50_s  # p50 improves (Fig. 5(b))
        assert hetero.tbt_p99_s > 1.5 * gpu.tbt_p99_s  # tail explodes


class TestCapacityLimits:
    def test_effective_batch_reduced_when_kv_overflows(self):
        # Long sequences at batch 128: hetero runs out first (Fig. 5(c)).
        spec = WorkloadSpec(lin_mean=8192, lout_mean=4096)
        gpu_sim = ServingSimulator(gpu_system(mixtral()), mixtral(), spec, max_batch=128)
        het_sim = ServingSimulator(hetero_system(mixtral()), mixtral(), spec, max_batch=128)
        assert het_sim.effective_batch < gpu_sim.effective_batch

    def test_impossible_workload_raises(self):
        spec = WorkloadSpec(lin_mean=2_000_000, lout_mean=1024)
        with pytest.raises(CapacityError):
            ServingSimulator(gpu_system(mixtral()), mixtral(), spec, max_batch=8)


class TestOpenLoop:
    def test_low_qps_has_idle_time(self):
        report = simulate(
            gpu_system(mixtral()),
            lin=256,
            lout=64,
            qps=0.5,
            limits=SimulationLimits(max_stages=200, warmup_stages=0),
        )
        # With half a request per second the system is mostly idle: the
        # measured window is far longer than the busy time.
        assert report.throughput_tokens_per_s < 100

    def test_overload_blows_up_t2ft(self):
        fast = simulate(gpu_system(mixtral()), lin=1024, lout=256, qps=2.0,
                        limits=SimulationLimits(max_stages=400, warmup_stages=0))
        slow = simulate(gpu_system(mixtral()), lin=1024, lout=256, qps=50.0,
                        limits=SimulationLimits(max_stages=400, warmup_stages=0))
        assert slow.t2ft_p50_s > 2 * fast.t2ft_p50_s


class TestSplitServing:
    def test_partitions_duplicate_weights(self):
        prefill, decode = split_partitions(mixtral())
        full = duplex_system(mixtral(), co_processing=True)
        split_weights = prefill.memory_profiles(mixtral())[0].weight_bytes
        full_weights = full.memory_profiles(mixtral())[0].weight_bytes
        assert split_weights == pytest.approx(2 * full_weights, rel=0.01)

    def test_split_never_sees_mixed_decode_stages(self):
        spec = WorkloadSpec(lin_mean=1024, lout_mean=256)
        sim = SplitServingSimulator(mixtral(), spec, max_batch=16, seed=1)
        report = sim.run(SimulationLimits(max_stages=200, warmup_stages=4))
        # Decode-partition TBT is flat: p99 close to p50 (Fig. 16's benefit).
        assert report.tbt_p99_s < 1.3 * report.tbt_p50_s

    def test_split_loses_throughput(self):
        spec = WorkloadSpec(lin_mean=1024, lout_mean=256)
        non_split = ServingSimulator(
            duplex_system(mixtral(), co_processing=True), mixtral(), spec, max_batch=32, seed=1
        ).run(SimulationLimits(max_stages=250, warmup_stages=8))
        split = SplitServingSimulator(mixtral(), spec, max_batch=32, seed=1).run(
            SimulationLimits(max_stages=250, warmup_stages=8)
        )
        assert split.throughput_tokens_per_s < non_split.throughput_tokens_per_s
