"""Shared-prefix KV dedup tests (tier: ``-m prefix`` — see TESTING.md).

Four layers:

* **index properties** — hypothesis drives interleaved
  acquire/commit/release/evict (and release→reacquire round trips)
  against :class:`~repro.serving.paging.PrefixIndex`, auditing at every
  boundary: resident tokens equal the tree's block sum, refcounts equal
  the live holders pinning each path (so ``refcount(parent) >=
  refcount(child)``), no zero-ref pending block survives, and the pool
  cap holds;
* **scheduler mechanism** — suffix-only prefill for cache hits, one pool
  copy per concurrent family, family-wide preemption when a shared
  prefix must be evicted (with the device invariant ``committed + pool
  <= capacity`` audited at every stage boundary), and pool-cap-bounded
  sharing;
* **router units** — :class:`PrefixAffinityRouter` stickiness, fallback
  re-pinning when the owner leaves the routing set, seeded tie-breaks,
  and the no-randomness fleet-of-one guarantee;
* **equivalence anchors** — dedup enabled with zero shared prefixes is
  byte-identical to dedup-off across every invariant-suite engine
  configuration, and a prefix-affinity cluster of one matches the
  deterministic-router cluster float-for-float.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.core.system import duplex_system  # noqa: E402
from repro.errors import ConfigError, SchedulingError  # noqa: E402
from repro.models.config import mixtral  # noqa: E402
from repro.serving.cluster import (  # noqa: E402
    ClusterSimulator,
    PrefixAffinityRouter,
    ReplicaView,
    RoundRobinRouter,
)
from repro.serving.engine import KvPagingCoordinator, ServingEngine  # noqa: E402
from repro.serving.generator import QueueSource, WorkloadSpec  # noqa: E402
from repro.serving.paging import (  # noqa: E402
    EvictionPolicy,
    HostLink,
    PagedKvManager,
    PagingConfig,
    PrefixConfig,
    PrefixIndex,
)
from repro.serving.request import Request  # noqa: E402
from repro.serving.scenarios import agent_loop  # noqa: E402
from repro.serving.scheduler import ContinuousBatchingScheduler  # noqa: E402
from repro.serving.simulator import SimulationLimits  # noqa: E402

from test_invariants import CONFIGURATIONS  # noqa: E402

pytestmark = pytest.mark.prefix

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)


# ----------------------------------------------------------------------
# index properties (hypothesis)
# ----------------------------------------------------------------------
#: Declared paths over a fixed segment catalog; shared roots guarantee
#: the interleaving actually exercises sharing, extension, and divergence.
PATHS = (
    ((0, 32),),
    ((0, 32), (1, 16)),
    ((0, 32), (1, 16), (2, 8)),
    ((0, 32), (3, 24)),
    ((4, 12),),
    ((4, 12), (5, 8)),
)


def _nodes(index: PrefixIndex):
    stack = list(index._root.children.values())
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children.values())


def _pinned(blocks, shared_tokens):
    """The path prefix an acquisition with ``shared_tokens`` pinned."""
    path, total = [], 0
    for key, tokens in blocks:
        if total == shared_tokens:
            break
        path.append((key, tokens))
        total += tokens
    assert total == shared_tokens, "shared span must end on a block boundary"
    return tuple(path)


def _expected_hit(index: PrefixIndex, blocks) -> int:
    """Contiguous-from-root ready tokens the next acquire should report."""
    node = index._root
    hit = 0
    for key, tokens in blocks:
        child = node.children.get(key)
        if child is None or not child.ready:
            break
        hit += tokens
        node = child
    return hit


def _audit(index: PrefixIndex, holders, cap) -> None:
    """The per-boundary invariants every interleaving must preserve."""
    nodes = list(_nodes(index))
    assert index.resident_tokens == sum(n.tokens for n in nodes), (
        "resident tokens diverge from the tree's block sum"
    )
    if cap is not None:
        assert index.resident_tokens <= cap, "pool exceeded its capacity"
    pins: dict[tuple[int, ...], int] = {}
    for path in holders.values():
        for i in range(1, len(path) + 1):
            key = tuple(k for k, _ in path[:i])
            pins[key] = pins.get(key, 0) + 1
    refcounts = index.refcounts()
    assert set(pins) <= set(refcounts), "a holder pins a block the tree lost"
    for path_key, refs in refcounts.items():
        assert refs == pins.get(path_key, 0), (
            f"refcount of {path_key} diverges from its live holders"
        )
        if len(path_key) > 1:
            assert refcounts[path_key[:-1]] >= refs, "child out-refs its parent"
    for node in nodes:
        if node.refcount == 0:
            assert node.ready, "a zero-ref pending block survived"


@given(data=st.data())
def test_index_invariants_under_interleaving(data):
    cap = data.draw(st.sampled_from((None, 40, 64, 96)), label="cap")
    index = PrefixIndex(PrefixConfig(capacity_tokens=cap))
    holders: dict[int, tuple] = {}   # rid -> pinned path
    declared: dict[int, tuple] = {}  # rid -> declared blocks (for reacquire)
    released: list[tuple[int, tuple, int]] = []
    next_rid = 0
    acquires = 0
    ops = ["acquire", "acquire", "commit", "release", "evict"]
    if cap is None:
        ops.append("reacquire")  # reacquire is cap-exempt by design
    for _ in range(data.draw(st.integers(min_value=8, max_value=40), label="ops")):
        op = data.draw(st.sampled_from(ops))
        if op == "acquire":
            rid, next_rid = next_rid, next_rid + 1
            blocks = data.draw(st.sampled_from(PATHS))
            existing = set(index.refcounts())
            hit = _expected_hit(index, blocks)
            acq = index.acquire(rid, blocks)
            acquires += 1
            pinned = _pinned(blocks, acq.shared_tokens)
            inserted = sum(
                tokens
                for i, (_, tokens) in enumerate(pinned)
                if tuple(k for k, _ in pinned[: i + 1]) not in existing
            )
            assert acq.inserted_tokens == inserted
            assert acq.hit_tokens == min(hit, acq.shared_tokens)
            if pinned:
                holders[rid] = pinned
                declared[rid] = blocks
                with pytest.raises(SchedulingError):
                    index.acquire(rid, blocks)  # double-acquire rejected
            else:
                assert not index.holds(rid)
        elif op == "commit" and holders:
            rid = data.draw(st.sampled_from(sorted(holders)))
            index.commit(rid)
        elif op == "release" and holders:
            rid = data.draw(st.sampled_from(sorted(holders)))
            before = index.resident_tokens
            dropped = index.release(rid)
            released.append((rid, declared.pop(rid), sum(t for _, t in holders.pop(rid))))
            assert dropped == before - index.resident_tokens, (
                "release dropped different tokens than it reported"
            )
        elif op == "reacquire" and released:
            rid, blocks, budget = released.pop(
                data.draw(st.integers(min_value=0, max_value=len(released) - 1))
            )
            ready_hit, missing = index.probe_resume(blocks, budget)
            acq = index.reacquire(rid, blocks, budget)
            assert acq.shared_tokens == budget
            assert acq.hit_tokens == ready_hit, "probe_resume disagrees with reacquire"
            assert acq.inserted_tokens == missing
            holders[rid] = _pinned(blocks, budget)
            declared[rid] = blocks
        elif op == "evict":
            needed = data.draw(st.integers(min_value=1, max_value=64))
            before = index.resident_tokens
            evictable = index.evictable_tokens()
            freed = index.evict_cached(needed)
            assert freed == before - index.resident_tokens
            assert freed <= evictable
            if evictable >= needed:
                assert freed >= needed, "room existed but eviction fell short"
        _audit(index, holders, cap)
    assert index.stats.acquisitions == acquires
    # Drain: releasing every holder leaves only zero-ref ready cache, all
    # of it evictable; a full eviction returns the pool to empty.
    for rid in sorted(holders):
        index.release(rid)
    holders.clear()
    _audit(index, holders, cap)
    assert index.holder_count == 0
    assert index.evictable_tokens() == index.resident_tokens
    index.evict_cached(index.resident_tokens)
    assert index.resident_tokens == 0


def test_block_validation():
    index = PrefixIndex()
    with pytest.raises(ConfigError):
        index.acquire(0, ())
    with pytest.raises(ConfigError):
        index.acquire(0, ((1, 0),))
    index.acquire(0, ((1, 16),))
    with pytest.raises(ConfigError):
        index.acquire(1, ((1, 8),))  # segment re-declared with new length
    with pytest.raises(SchedulingError):
        index.release(99)  # not a holder


# ----------------------------------------------------------------------
# scheduler mechanism (stub executor, hand-fed requests)
# ----------------------------------------------------------------------
class _StubExecutor:
    """Fixed-latency pricing, enough surface for engine + coordinator."""

    latency_s = 0.01

    def run_stage(self, workload):
        class _Result:
            latency_s = self.latency_s
            is_mixed = workload.is_mixed
            dram_energy_by_category: dict = {}
            compute_energy_by_category: dict = {}
            comm_energy_j = 0.0

        return _Result()


def _request(rid, arrival, lin=30, lout=4, blocks=None):
    return Request(
        request_id=rid,
        arrival_time_s=arrival,
        input_len=lin,
        output_len=lout,
        prefix_blocks=blocks,
    )


def make_prefix_engine(
    capacity=200,
    max_batch=8,
    pool_cap=None,
    paging_policy=None,
):
    source = QueueSource()
    executor = _StubExecutor()
    index = PrefixIndex(PrefixConfig(capacity_tokens=pool_cap))
    coordinator = None
    if paging_policy is not None:
        manager = PagedKvManager(
            capacity_tokens=capacity,
            kv_bytes_per_token=1.0,
            policy=paging_policy,
            link=HostLink(bandwidth=1e6, latency_s=0.001),
        )
        coordinator = KvPagingCoordinator(manager, executor)
    scheduler = ContinuousBatchingScheduler(
        source, max_batch, capacity, paging=coordinator, prefix=index
    )
    engine = ServingEngine(scheduler, executor, label="prefix-test")
    return engine, scheduler, index, source


LIMITS = SimulationLimits(max_stages=2000, warmup_stages=0)


def _chunks_by_request(events):
    booked: dict[int, int] = {}
    for event in events:
        for rid, tokens in event.prefill_chunks:
            booked[rid] = booked.get(rid, 0) + tokens
    return booked


def test_prefix_requires_finite_capacity():
    with pytest.raises(ConfigError):
        ContinuousBatchingScheduler(QueueSource(), 4, None, prefix=PrefixIndex())


def test_second_holder_prefills_only_the_suffix():
    engine, scheduler, index, source = make_prefix_engine()
    source.push(_request(0, 0.0, lin=30, blocks=((7, 20),)))
    source.push(_request(1, 0.1, lin=30, blocks=((7, 20),)))  # after 0 commits
    events = []
    engine.observers.append(events.append)
    engine.run(LIMITS)
    assert sorted(engine.finished_ids) == [0, 1]
    booked = _chunks_by_request(events)
    assert booked[0] == 30, "the first holder computes the whole prompt"
    assert booked[1] == 10, "the second holder prefills only the uncached suffix"
    assert index.stats.hit_tokens == 20
    assert index.holder_count == 0, "finish must release every hold"


def test_concurrent_family_occupies_one_pool_copy():
    engine, scheduler, index, source = make_prefix_engine(capacity=100)
    # Both arrive before either prefill commits: the second shares the
    # first's *pending* blocks (one reservation) but cannot hit them yet.
    source.push(_request(0, 0.0, lin=30, blocks=((9, 20),)))
    source.push(_request(1, 0.0, lin=30, blocks=((9, 20),)))
    events = []
    engine.observers.append(events.append)
    engine.run(LIMITS)
    assert sorted(engine.finished_ids) == [0, 1]
    assert index.stats.inserted_tokens == 20, "the family inserted one copy"
    assert index.stats.hit_tokens == 0, "pending blocks are not hit-able"
    booked = _chunks_by_request(events)
    assert booked[0] == 30 and booked[1] == 30


def test_pool_cap_bounds_the_shared_span():
    engine, scheduler, index, source = make_prefix_engine(capacity=400, pool_cap=32)
    blocks = ((11, 24), (12, 24))  # 48 declared > 32 of pool cap
    source.push(_request(0, 0.0, lin=60, blocks=blocks))
    source.push(_request(1, 0.1, lin=60, blocks=blocks))
    events = []
    engine.observers.append(events.append)
    engine.run(LIMITS)
    assert sorted(engine.finished_ids) == [0, 1]
    assert index.peak_resident_tokens <= 32
    booked = _chunks_by_request(events)
    # Only the first (cap-fitting) block is shared and hit-able.
    assert booked[0] == 60
    assert booked[1] == 60 - 24


@pytest.mark.parametrize("policy", [EvictionPolicy.MIGRATE, EvictionPolicy.RECOMPUTE])
def test_shared_prefix_eviction_preempts_the_whole_family(policy):
    engine, scheduler, index, source = make_prefix_engine(
        capacity=100, paging_policy=policy
    )
    # Family 0+1 shares a 40-token prefix: 2 x 30 private + 40 pooled fill
    # the device exactly, so the private arrival can only fit by evicting
    # the shared span — which preempts *both* holders at one boundary.
    source.push(_request(0, 0.0, lin=50, lout=20, blocks=((13, 40),)))
    source.push(_request(1, 0.0, lin=50, lout=20, blocks=((13, 40),)))
    source.push(_request(2, 0.05, lin=60, lout=8))
    events = []
    engine.observers.append(events.append)

    def device_invariant(event):
        pool = scheduler.prefix_resident_tokens
        assert event.committed_tokens + pool <= event.capacity_tokens, (
            f"device over-committed: {event.committed_tokens} private + "
            f"{pool} pooled > {event.capacity_tokens}"
        )

    engine.observers.append(device_invariant)
    engine.run(LIMITS)
    family_evictions = [set(e.preempted) for e in events if e.preempted]
    assert {0, 1} in family_evictions, "the prefix family must be preempted together"
    assert sorted(engine.finished_ids) == [0, 1, 2]
    assert sorted(scheduler.admitted_log) == [0, 1, 2]
    assert index.holder_count == 0
    # Exact token conservation across evict/resume: the pool dropped its
    # copy once and the family re-pinned on resume, never double-counted.
    assert all(refs == 0 for refs in index.refcounts().values())


def test_resumed_family_repins_its_shared_span():
    engine, scheduler, index, source = make_prefix_engine(
        capacity=100, paging_policy=EvictionPolicy.MIGRATE
    )
    source.push(_request(0, 0.0, lin=50, lout=20, blocks=((13, 40),)))
    source.push(_request(1, 0.0, lin=50, lout=20, blocks=((13, 40),)))
    source.push(_request(2, 0.05, lin=60, lout=8))
    resumed_holds = []
    events = []
    engine.observers.append(events.append)
    engine.observers.append(
        lambda event: resumed_holds.extend(
            (rid, index.holds(rid)) for rid in event.resumed
        )
    )
    engine.run(LIMITS)
    assert resumed_holds, "the family never resumed"
    assert all(held for _, held in resumed_holds), (
        "a resumed family member landed without re-pinning its prefix"
    )


# ----------------------------------------------------------------------
# prefix-affinity router
# ----------------------------------------------------------------------
def _view(index, outstanding=0, resident=0, capacity=None):
    return ReplicaView(
        index=index,
        queue_depth=0,
        outstanding_tokens=outstanding,
        now_s=0.0,
        resident_tokens=resident,
        capacity_tokens=capacity,
    )


def _routed(rid, root=None):
    blocks = ((root, 64),) if root is not None else None
    return _request(rid, 0.0, lin=128, blocks=blocks)


class TestPrefixAffinityRouter:
    def test_sessions_stick_to_their_owner(self):
        router = PrefixAffinityRouter(seed=0)
        views = [_view(0, outstanding=500), _view(1, outstanding=10)]
        assert router.choose(views, _routed(0, root=5)) == 1  # lighter wins
        # The owner keeps the session even once it is the heavier replica.
        views = [_view(0, outstanding=10), _view(1, outstanding=500)]
        assert router.choose(views, _routed(1, root=5)) == 1

    def test_fallback_repins_when_owner_leaves_the_routing_set(self):
        router = PrefixAffinityRouter(seed=0)
        views = [_view(0, outstanding=500), _view(1, outstanding=10)]
        assert router.choose(views, _routed(0, root=5)) == 1
        # Replica 1 drains/fails: its view is no longer offered, so the
        # key falls back to pressure scoring and re-pins to the survivor.
        assert router.choose([_view(0, outstanding=500)], _routed(1, root=5)) == 0
        # The re-pin is durable: with the old owner back and idle, the
        # session stays where its cache now actually lives.
        views = [_view(0, outstanding=500), _view(1, outstanding=0)]
        assert router.choose(views, _routed(2, root=5)) == 0

    def test_memory_pressure_steers_unpinned_requests(self):
        router = PrefixAffinityRouter(seed=0, pressure_weight=4.0)
        views = [
            _view(0, outstanding=100, resident=95, capacity=100),
            _view(1, outstanding=110, resident=5, capacity=100),
        ]
        # Equal-ish queues, but replica 0 is nearly out of KV: the
        # pressure-inflated score sends the new session to replica 1.
        assert router.choose(views, _routed(0, root=8)) == 1

    def test_exact_ties_break_by_seed_not_by_index(self):
        views = [_view(0, outstanding=0), _view(1, outstanding=0)]
        chosen = [
            PrefixAffinityRouter(seed=0).choose(views, _routed(i)) for i in range(32)
        ]
        # Identical routers replay the identical sequence …
        replay = [
            PrefixAffinityRouter(seed=0).choose(views, _routed(i)) for i in range(32)
        ]
        assert chosen == replay
        # … and a *stateful* router's seeded stream visits both replicas.
        router = PrefixAffinityRouter(seed=0)
        stream = {router.choose(views, _routed(i)) for i in range(32)}
        assert stream == {0, 1}, "ties funnelled onto one replica"

    def test_fleet_of_one_consumes_no_randomness(self):
        router = PrefixAffinityRouter(seed=0)
        for rid in range(16):
            assert router.choose([_view(3)], _routed(rid)) == 3
        probe = np.random.default_rng(0)
        assert router._rng.integers(1 << 30) == probe.integers(1 << 30), (
            "a fleet of one must not advance the tie-break RNG"
        )

    def test_cluster_of_one_matches_deterministic_router(self):
        spec = WorkloadSpec(lin_mean=256, lout_mean=32, lin_cv=0.3, lout_cv=0.3, qps=30.0)
        limits = SimulationLimits(max_stages=60, warmup_stages=6)
        reports = []
        for router in (RoundRobinRouter(), PrefixAffinityRouter(seed=0)):
            sim = ClusterSimulator(
                SYSTEM, MODEL, spec, n_replicas=1, router=router,
                max_batch=8, seed=3, max_requests=40,
            )
            reports.append(sim.run(limits))
        assert reports[0].fleet == reports[1].fleet


# ----------------------------------------------------------------------
# equivalence anchor: dedup on + zero shared prefixes == dedup off
# ----------------------------------------------------------------------
def _force_dedup(probe) -> int:
    """Enable an (unused) prefix index on every capacity-bearing engine."""
    enabled = 0
    for engine in probe.engines:
        scheduler = engine.scheduler
        if getattr(scheduler, "capacity_tokens", None) is None:
            continue  # e.g. a split partition without a KV budget
        scheduler.prefix = PrefixIndex(PrefixConfig())
        engine._prefix_enabled = True
        enabled += 1
    return enabled


ANCHOR_SPECS = [((64, 8, 0.2, 0.2), 7), ((160, 24, 0.5, 0.0), 12345)]


@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
@pytest.mark.parametrize("spec_params,seed", ANCHOR_SPECS)
def test_zero_shared_trajectory_is_byte_identical(config, spec_params, seed):
    run_off, probe_off, _ = CONFIGURATIONS[config](spec_params, seed)
    report_off = run_off()
    run_on, probe_on, _ = CONFIGURATIONS[config](spec_params, seed)
    assert _force_dedup(probe_on) > 0, "no engine could host a prefix index"
    report_on = run_on()
    assert probe_on.events == probe_off.events, (
        "an idle prefix index perturbed the stage-event trajectory"
    )
    assert report_on == report_off
    fleet = getattr(report_on, "fleet", report_on)
    assert fleet.prefix == {}, "dedup metrics fired without any prefix request"
    for engine in probe_on.engines:
        index = getattr(engine.scheduler, "prefix", None)
        if index is not None:
            assert index.resident_tokens == 0 and index.stats.acquisitions == 0


# ----------------------------------------------------------------------
# fleet pooling: prefix counters aggregate across replicas
# ----------------------------------------------------------------------
def test_fleet_report_pools_prefix_counters():
    source = agent_loop().source(seed=3, max_requests=40)
    sim = ClusterSimulator(
        SYSTEM, MODEL, source,
        n_replicas=2,
        router=PrefixAffinityRouter(seed=0),
        max_batch=16,
        seed=3,
        prefix=PrefixConfig(capacity_tokens=64 * 1024),
    )
    report = sim.run(SimulationLimits(max_stages=3000, warmup_stages=0))
    fleet = report.fleet
    assert fleet.prefix.get("hit_tokens", 0.0) > 0, "agent loops must hit the cache"
    measured = [replica for replica in report.replicas if replica is not None]
    # Counters sum across replicas; so do the per-pool high-water marks
    # (each replica owns a distinct pool, so the sum bounds the fleet's
    # concurrent shared-residency footprint).
    for key in (
        "admissions", "hit_tokens", "miss_tokens",
        "saved_prefill_s", "peak_shared_tokens",
    ):
        assert fleet.prefix.get(key, 0.0) == pytest.approx(
            sum(replica.prefix.get(key, 0.0) for replica in measured)
        )


# ----------------------------------------------------------------------
# SL005 regression: ``index.stats`` is an immutable snapshot
# ----------------------------------------------------------------------
def test_stats_snapshot_does_not_change_retroactively():
    """The pre-simlint PrefixStats was mutated in place; a captured
    ``.stats`` alias kept changing as the pool worked.  Pin the frozen
    snapshot contract that replaced it."""
    index = PrefixIndex()
    index.acquire(0, ((1, 16),))
    before = index.stats
    assert before.acquisitions == 1 and before.inserted_tokens == 16
    index.commit(0)
    index.acquire(1, ((1, 16),))
    assert before.acquisitions == 1, "captured snapshot must not change under its feet"
    assert index.stats.acquisitions == 2
    assert index.stats.hit_tokens == 16


def test_stats_snapshot_is_frozen():
    import dataclasses

    with pytest.raises(dataclasses.FrozenInstanceError):
        PrefixIndex().stats.acquisitions = 3


def test_stats_snapshots_equal_across_identical_runs():
    def run():
        index = PrefixIndex(PrefixConfig(capacity_tokens=64))
        index.acquire(0, ((1, 16), (2, 8)))
        index.commit(0)
        index.acquire(1, ((1, 16), (2, 8)))
        index.release(0)
        index.release(1)
        return index.stats

    assert run() == run()
