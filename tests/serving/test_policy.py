"""Tests for the pluggable scheduling policies."""

import pytest

from repro.core.system import duplex_system
from repro.errors import ConfigError
from repro.models.config import mixtral
from repro.serving.generator import RequestGenerator, WorkloadSpec
from repro.serving.policy import ChunkedPrefillPolicy, FcfsPolicy, SloAwarePolicy
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.simulator import ServingSimulator, SimulationLimits


def make_scheduler(max_batch=4, lin=64, lout=4, qps=None, policy=None, seed=0):
    spec = WorkloadSpec(lin_mean=lin, lout_mean=lout, qps=qps, min_len=1)
    return ContinuousBatchingScheduler(
        RequestGenerator(spec, seed=seed), max_batch, policy=policy
    )


class TestFcfsDefault:
    def test_default_policy_is_fcfs(self):
        scheduler = make_scheduler()
        assert isinstance(scheduler.policy, FcfsPolicy)

    def test_fcfs_matches_legacy_behaviour(self):
        # The extracted policy must reproduce the seed scheduler: first
        # stage all-prefill, then decode-only, replacements on completion.
        scheduler = make_scheduler(max_batch=2, lout=2, policy=FcfsPolicy())
        stage = scheduler.build_stage()
        assert stage.n_prefill == 2
        scheduler.complete_stage(0.01)
        stage = scheduler.build_stage()
        assert stage.n_prefill == 0 and stage.n_decode == 2
        finished = scheduler.complete_stage(0.01)
        assert len(finished) == 2


class TestChunkedPrefill:
    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigError):
            ChunkedPrefillPolicy(max_prefill_tokens=0)

    def test_long_prompt_prefills_across_stages(self):
        policy = ChunkedPrefillPolicy(max_prefill_tokens=100)
        scheduler = make_scheduler(max_batch=1, lin=250, lout=4, policy=policy)
        chunks = []
        for _ in range(3):
            stage = scheduler.build_stage()
            assert stage.n_prefill == 1
            chunks.append(stage.prefill_lengths[0])
            scheduler.complete_stage(0.01)
        assert chunks == [100, 100, 50]
        request = scheduler.running[0]
        assert request.state is RequestState.DECODING
        assert request.tokens_generated == 1  # first token only at final chunk

    def test_chunk_context_carried_into_stage(self):
        policy = ChunkedPrefillPolicy(max_prefill_tokens=100)
        scheduler = make_scheduler(max_batch=1, lin=250, lout=4, policy=policy)
        scheduler.build_stage()
        scheduler.complete_stage(0.01)
        stage = scheduler.build_stage()
        assert stage.prefill_context_lengths == (100,)

    def test_budget_shared_across_requests(self):
        policy = ChunkedPrefillPolicy(max_prefill_tokens=100)
        scheduler = make_scheduler(max_batch=4, lin=60, lout=4, policy=policy)
        stage = scheduler.build_stage()
        # 60 + 40 fit the budget; the second request's chunk is truncated
        # and the remaining two wait.
        assert stage.prefill_lengths == (60, 40)

    def test_first_prefill_always_progresses(self):
        # A prompt far above the budget still moves budget tokens per stage.
        policy = ChunkedPrefillPolicy(max_prefill_tokens=1)
        scheduler = make_scheduler(max_batch=2, lin=3, lout=2, policy=policy)
        stage = scheduler.build_stage()
        assert stage.prefill_lengths == (1,)
        scheduler.complete_stage(0.01)
        assert scheduler.running[0].prefilled_tokens == 1

    def test_bounds_mixed_stage_tbt_tail(self):
        # The point of chunked prefill: long prompts no longer blow up the
        # TBT tail of ongoing decodes (at a T2FT cost).
        model = mixtral()
        system = duplex_system(model, co_processing=True, expert_tensor_parallel=True)
        spec = WorkloadSpec(lin_mean=4096, lout_mean=512, qps=8.0)
        limits = SimulationLimits(max_stages=400, warmup_stages=20)
        fcfs = ServingSimulator(system, model, spec, max_batch=64, seed=3).run(limits)
        chunked = ServingSimulator(
            system, model, spec, max_batch=64, seed=3,
            policy=ChunkedPrefillPolicy(max_prefill_tokens=256),
        ).run(limits)
        assert chunked.tbt_p99_s < 0.5 * fcfs.tbt_p99_s
        assert chunked.t2ft_p50_s > fcfs.t2ft_p50_s  # the documented trade-off


class TestSloAware:
    def test_slo_must_be_positive(self):
        with pytest.raises(ConfigError):
            SloAwarePolicy(t2ft_slo_s=0.0)

    def _request(self, request_id, arrival, lin=32):
        return Request(request_id=request_id, arrival_time_s=arrival, input_len=lin, output_len=4)

    def test_orders_by_deadline(self):
        policy = SloAwarePolicy(t2ft_slo_s=1.0)
        waiting = [self._request(0, 2.0), self._request(1, 0.5), self._request(2, 1.0)]
        policy.order_waiting(waiting, now_s=2.0)
        assert [r.request_id for r in waiting] == [1, 2, 0]

    def test_prefers_short_inputs_on_deadline_ties(self):
        policy = SloAwarePolicy(t2ft_slo_s=1.0, prefer_short_inputs=True)
        waiting = [self._request(0, 1.0, lin=512), self._request(1, 1.0, lin=16)]
        policy.order_waiting(waiting, now_s=1.0)
        assert [r.request_id for r in waiting] == [1, 0]

    def test_sheds_expired_requests(self):
        policy = SloAwarePolicy(t2ft_slo_s=1.0)
        fresh, stale = self._request(0, 5.0), self._request(1, 0.0)
        assert policy.shed([fresh, stale], now_s=5.5) == [stale]

    def test_shedding_disabled(self):
        policy = SloAwarePolicy(t2ft_slo_s=1.0, shed_expired=False)
        assert policy.shed([self._request(1, 0.0)], now_s=9.0) == []

    def test_per_request_slo_overrides_policy_default(self):
        # Multi-tenant scenarios stamp each request with its tenant's SLO:
        # a lenient batch request must not be shed on the strict default.
        policy = SloAwarePolicy(t2ft_slo_s=0.5)
        batch = Request(
            request_id=0, arrival_time_s=0.0, input_len=32, output_len=4, t2ft_slo_s=4.0
        )
        interactive = self._request(1, 0.0)
        assert policy.deadline(batch) == 4.0
        assert policy.deadline(interactive) == 0.5
        assert policy.shed([batch, interactive], now_s=1.0) == [interactive]
        waiting = [batch, interactive]
        policy.order_waiting(waiting, now_s=0.0)
        assert [r.request_id for r in waiting] == [1, 0]

    def test_scheduler_rejects_expired_queue(self):
        # Overloaded open loop: requests queue past their deadline and the
        # policy sheds them instead of serving them uselessly late.
        policy = SloAwarePolicy(t2ft_slo_s=0.05)
        scheduler = make_scheduler(max_batch=1, lin=64, lout=8, qps=1000.0, policy=policy)
        for _ in range(40):
            if scheduler.build_stage() is None:
                scheduler.now_s = scheduler.source.peek_arrival()
                continue
            scheduler.complete_stage(0.02)
        assert len(scheduler.rejected) > 0
        assert all(r.state is RequestState.QUEUED for r in scheduler.rejected)

    def test_preemption_order_is_youngest_first(self):
        # Default hook (any policy): most recently arrived parks first.
        policy = FcfsPolicy()
        running = [
            Request(request_id=i, arrival_time_s=float(i), input_len=8, output_len=4)
            for i in range(3)
        ]
        order = policy.preemption_order(running, now_s=10.0)
        assert [r.request_id for r in order] == [2, 1, 0]

    def test_slo_preemption_protects_near_deadline_requests(self):
        policy = SloAwarePolicy(t2ft_slo_s=1.0)  # default guard: half the SLO
        safe = Request(request_id=0, arrival_time_s=0.0, input_len=8, output_len=4)
        racing = Request(request_id=1, arrival_time_s=0.35, input_len=8, output_len=4)
        # At t=1.0: safe's deadline (1.0) passed and racing's (1.35) is
        # within the 0.5s guard — but safe already produced a first token.
        safe.start_prefill()
        safe.finish_prefill(0.5)
        racing.start_prefill()
        order = policy.preemption_order([safe, racing], now_s=1.0)
        assert [r.request_id for r in order] == [0]

    def test_slo_preemption_guard_override_and_per_request_slo(self):
        policy = SloAwarePolicy(t2ft_slo_s=1.0, preemption_guard_s=0.5)
        racing = Request(request_id=1, arrival_time_s=0.0, input_len=8, output_len=4)
        racing.start_prefill()
        # Preemptible while the deadline is far, protected once inside the
        # guard window, preemptible again once the deadline is lost (a
        # certain miss must not keep healthier requests out of residency).
        assert policy.preemption_order([racing], now_s=0.4) == [racing]
        assert policy.preemption_order([racing], now_s=0.75) == []
        assert policy.preemption_order([racing], now_s=1.0) == [racing]
        tenant = Request(
            request_id=2, arrival_time_s=0.0, input_len=8, output_len=4, t2ft_slo_s=10.0
        )
        tenant.start_prefill()
        loose = SloAwarePolicy(t2ft_slo_s=1.0)  # guard = half the carried SLO
        assert loose.preemption_order([tenant], now_s=4.0) == [tenant]
        assert loose.preemption_order([tenant], now_s=6.0) == []
        assert loose.preemption_order([tenant], now_s=11.0) == [tenant]

    def test_negative_preemption_guard_rejected(self):
        with pytest.raises(ConfigError):
            SloAwarePolicy(t2ft_slo_s=1.0, preemption_guard_s=-0.1)

    def test_shedding_under_overload_serves_fresher_requests(self):
        model = mixtral()
        system = duplex_system(model, co_processing=True)
        spec = WorkloadSpec(lin_mean=1024, lout_mean=256, qps=120.0)
        limits = SimulationLimits(max_stages=400, warmup_stages=20)
        fcfs = ServingSimulator(system, model, spec, max_batch=16, seed=3).run(limits)
        slo_sim = ServingSimulator(
            system, model, spec, max_batch=16, seed=3,
            policy=SloAwarePolicy(t2ft_slo_s=0.5),
        )
        slo = slo_sim.run(limits)
        assert len(slo_sim.scheduler.rejected) > 0
        # Served requests meet their first-token deadline no worse than FCFS.
        assert slo.t2ft_p50_s <= fcfs.t2ft_p50_s
