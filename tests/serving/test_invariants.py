"""Property-based serving-core invariants (tier 1 — see TESTING.md).

One harness, every engine configuration: the monolithic simulator (open
loop, warm-started closed loop, chunked prefill, SLO shedding), the split
two-partition deployment, and homogeneous/heterogeneous clusters.  For
randomized seeds and workload shapes, the harness wraps every request
source with a recorder, attaches a :class:`StageEvent` probe to every
engine, runs the simulation, and audits the ledgers:

* **lifecycle** — every admitted request finishes, hands off downstream,
  or is still in flight, exactly once; shed requests are never admitted;
  nothing finishes twice anywhere in the deployment;
* **token conservation** — a finished request booked exactly its input
  length of prefill chunks and ``output_len - 1`` decode steps across all
  engines (chunked prefill included), and its Request object agrees;
* **KV capacity** — committed tokens never exceed the scheduler's
  capacity, at any stage, in any engine;
* **virtual time** — per-engine stage-completion clocks are monotone,
  stage latencies strictly positive, per-request timestamps ordered.

Run ``pytest -m invariants`` to select just this suite, and crank the
random search with ``--invariant-examples N`` (the default is a small,
derandomized CI-sized run).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.core.system import duplex_system  # noqa: E402
from repro.models.config import mixtral  # noqa: E402
from repro.serving.cluster import (  # noqa: E402
    ClusterSimulator,
    MonolithicReplicaSpec,
    PowerOfTwoChoicesRouter,
    SplitReplicaSpec,
)
from repro.serving.engine import StageEvent  # noqa: E402
from repro.serving.generator import WorkloadSpec  # noqa: E402
from repro.serving.policy import ChunkedPrefillPolicy, SloAwarePolicy  # noqa: E402
from repro.serving.request import Request, RequestState  # noqa: E402
from repro.serving.simulator import ServingSimulator, SimulationLimits  # noqa: E402
from repro.serving.split import SplitServingSimulator  # noqa: E402

pytestmark = pytest.mark.invariants

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)
LIMITS = SimulationLimits(max_stages=40, warmup_stages=6)


class RecordingSource:
    """Wraps a request source, remembering every request it hands out."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.taken: dict[int, Request] = {}

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def closed_loop(self) -> bool:
        return bool(getattr(self._inner, "closed_loop", False))

    def take(self, now_s: float) -> Request:
        request = self._inner.take(now_s)
        self.taken[request.request_id] = request
        return request


class Probe:
    """Collects every engine's stage events, keyed per engine."""

    def __init__(self, engines) -> None:
        self.engines = tuple(engines)
        self.events: dict[int, list[StageEvent]] = {}
        for index, engine in enumerate(self.engines):
            self.events[index] = []
            engine.observers.append(self.events[index].append)

    def events_for(self, engine) -> list[StageEvent]:
        return self.events[self.engines.index(engine)]

    def labelled(self):
        for index, engine in enumerate(self.engines):
            yield engine.label, self.events[index]


# ----------------------------------------------------------------------
# configuration harness: each builder returns (run, probe, recorder)
# ----------------------------------------------------------------------
def _spec(draw_spec, qps=None):
    lin, lout, lin_cv, lout_cv = draw_spec
    return WorkloadSpec(
        lin_mean=lin, lout_mean=lout, lin_cv=lin_cv, lout_cv=lout_cv, qps=qps
    )


def build_mono_open(spec_params, seed):
    sim = ServingSimulator(
        SYSTEM, MODEL, _spec(spec_params, qps=25.0), max_batch=6, seed=seed
    )
    recorder = RecordingSource(sim.scheduler.source)
    sim.scheduler.source = recorder
    return lambda: sim.run(LIMITS), Probe(sim.engines), recorder


def build_mono_warm_closed(spec_params, seed):
    sim = ServingSimulator(SYSTEM, MODEL, _spec(spec_params), max_batch=6, seed=seed)
    assert sim.warm_start
    recorder = RecordingSource(sim.scheduler.source)
    sim.scheduler.source = recorder
    return lambda: sim.run(LIMITS), Probe(sim.engines), recorder


def build_mono_chunked(spec_params, seed):
    sim = ServingSimulator(
        SYSTEM, MODEL, _spec(spec_params, qps=25.0), max_batch=6, seed=seed,
        policy=ChunkedPrefillPolicy(max_prefill_tokens=64),
    )
    recorder = RecordingSource(sim.scheduler.source)
    sim.scheduler.source = recorder
    return lambda: sim.run(LIMITS), Probe(sim.engines), recorder


def build_mono_shedding(spec_params, seed):
    sim = ServingSimulator(
        SYSTEM, MODEL, _spec(spec_params, qps=400.0), max_batch=4, seed=seed,
        policy=SloAwarePolicy(t2ft_slo_s=0.02, prefer_short_inputs=True),
    )
    recorder = RecordingSource(sim.scheduler.source)
    sim.scheduler.source = recorder
    return lambda: sim.run(LIMITS), Probe(sim.engines), recorder


def build_split_closed(spec_params, seed):
    sim = SplitServingSimulator(MODEL, _spec(spec_params), max_batch=8, seed=seed)
    recorder = RecordingSource(sim.prefill_engine.scheduler.source)
    sim.prefill_engine.scheduler.source = recorder
    sim.source = recorder
    return lambda: sim.run(LIMITS), Probe(sim.engines), recorder


def build_split_poisson(spec_params, seed):
    sim = SplitServingSimulator(
        MODEL, _spec(spec_params, qps=25.0), max_batch=8, seed=seed
    )
    recorder = RecordingSource(sim.prefill_engine.scheduler.source)
    sim.prefill_engine.scheduler.source = recorder
    sim.source = recorder
    return lambda: sim.run(LIMITS), Probe(sim.engines), recorder


def build_cluster(spec_params, seed):
    sim = ClusterSimulator(
        SYSTEM, MODEL, _spec(spec_params, qps=120.0), n_replicas=2,
        router=PowerOfTwoChoicesRouter(seed=seed), max_batch=4, seed=seed,
        policy_factory=lambda: SloAwarePolicy(t2ft_slo_s=0.05),
        max_requests=60,
    )
    recorder = RecordingSource(sim.source)
    sim.source = recorder
    return lambda: sim.run(LIMITS), Probe(sim.engines), recorder


def build_cluster_hetero(spec_params, seed):
    sim = ClusterSimulator(
        SYSTEM, MODEL, _spec(spec_params, qps=80.0),
        max_batch=6, seed=seed, max_requests=50,
        replicas=(MonolithicReplicaSpec(), SplitReplicaSpec()),
    )
    recorder = RecordingSource(sim.source)
    sim.source = recorder
    return lambda: sim.run(LIMITS), Probe(sim.engines), recorder


CONFIGURATIONS = {
    "mono-open": build_mono_open,
    "mono-warm-closed": build_mono_warm_closed,
    "mono-chunked-prefill": build_mono_chunked,
    "mono-slo-shedding": build_mono_shedding,
    "split-closed": build_split_closed,
    "split-poisson": build_split_poisson,
    "cluster-homogeneous": build_cluster,
    "cluster-heterogeneous": build_cluster_hetero,
}

spec_strategy = st.tuples(
    st.sampled_from((24, 64, 160, 384)),   # lin mean
    st.sampled_from((4, 8, 24, 48)),       # lout mean
    st.sampled_from((0.0, 0.2, 0.5)),      # lin cv
    st.sampled_from((0.0, 0.2, 0.5)),      # lout cv
)


# ----------------------------------------------------------------------
# the invariant audit
# ----------------------------------------------------------------------
def audit_clocks(probe: Probe) -> None:
    for label, events in probe.labelled():
        last = float("-inf")
        for event in events:
            assert event.latency_s > 0, f"{label}: non-positive stage latency"
            assert event.now_s >= last, f"{label}: stage clock went backwards"
            last = event.now_s


def audit_kv_occupancy(probe: Probe) -> None:
    for label, events in probe.labelled():
        for event in events:
            assert event.committed_tokens >= 0, f"{label}: negative KV commitment"
            if event.capacity_tokens is not None:
                assert event.committed_tokens <= event.capacity_tokens, (
                    f"{label}: KV occupancy {event.committed_tokens} exceeds "
                    f"capacity {event.capacity_tokens}"
                )


def audit_lifecycle(probe: Probe) -> None:
    all_finished: list[int] = []
    all_admitted: set[int] = set()
    all_rejected: list[int] = []
    for engine in probe.engines:
        admitted = engine.scheduler.admitted_log
        assert len(admitted) == len(set(admitted)), (
            f"{engine.label}: a request was admitted twice"
        )
        # Every admission is attributed to exactly one stage event, in
        # admission order (split prefill admissions happen outside step()).
        event_admitted = [
            rid for event in probe.events_for(engine) for rid in event.admitted
        ]
        assert event_admitted == list(admitted), (
            f"{engine.label}: stage events misattribute admissions"
        )
        finished = set(engine.finished_ids)
        assert len(engine.finished_ids) == len(finished), (
            f"{engine.label}: a request finished twice in one engine"
        )
        handed = set(engine.handed_off_ids)
        running = {r.request_id for r in engine.scheduler.running}
        # Exactly-once terminal accounting per engine:
        assert finished | handed | running == set(admitted), (
            f"{engine.label}: admitted requests unaccounted for"
        )
        assert finished & handed == set(), f"{engine.label}: finished AND handed off"
        assert finished & running == set(), f"{engine.label}: finished but still running"
        assert handed & running == set(), f"{engine.label}: handed off but still running"
        all_finished.extend(engine.finished_ids)
        all_admitted |= set(admitted)
        all_rejected.extend(r.request_id for r in engine.scheduler.rejected)
    assert len(all_finished) == len(set(all_finished)), (
        "a request finished in two different engines"
    )
    assert len(all_rejected) == len(set(all_rejected)), "a request was shed twice"
    assert set(all_rejected) & all_admitted == set(), "a shed request was admitted"


def audit_token_conservation(probe: Probe, recorder: RecordingSource) -> None:
    finished_ids = {rid for engine in probe.engines for rid in engine.finished_ids}
    # Object-level conservation for every finished request (covers
    # warm-start synthetics, which never prefill through a stage).
    for rid, request in recorder.taken.items():
        if request.state is RequestState.FINISHED:
            assert rid in finished_ids, f"request {rid} finished outside any engine"
            assert request.prefilled_tokens == request.input_len
            assert request.tokens_generated == request.output_len
            assert request.arrival_time_s <= request.first_token_time_s
            assert request.first_token_time_s <= request.completion_time_s
        else:
            assert rid not in finished_ids, (
                f"request {rid} in engine ledgers but not FINISHED"
            )
    # Event-ledger conservation for fully simulated requests: chunks booked
    # sum to the input, decode steps to output_len - 1 (the first token
    # rides on the final prefill chunk).
    chunks: dict[int, int] = {}
    decode_steps: dict[int, int] = {}
    for events in probe.events.values():
        for event in events:
            for rid, tokens in event.prefill_chunks:
                chunks[rid] = chunks.get(rid, 0) + tokens
            for rid in event.decode_ids:
                decode_steps[rid] = decode_steps.get(rid, 0) + 1
    for rid in finished_ids:
        if rid not in chunks:
            continue  # warm-start synthetic: entered mid-flight
        request = recorder.taken[rid]
        assert chunks[rid] == request.input_len, (
            f"request {rid} booked {chunks[rid]} prefill tokens for a "
            f"{request.input_len}-token input"
        )
        assert decode_steps.get(rid, 0) == request.output_len - 1, (
            f"request {rid} booked {decode_steps.get(rid, 0)} decode steps for a "
            f"{request.output_len}-token output"
        )


@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
@given(spec_params=spec_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_serving_invariants(config, spec_params, seed):
    run, probe, recorder = CONFIGURATIONS[config](spec_params, seed)
    report = run()
    assert any(probe.events.values()), "no stages executed — the run was vacuous"
    audit_clocks(probe)
    audit_kv_occupancy(probe)
    audit_lifecycle(probe)
    audit_token_conservation(probe, recorder)
    # Percentile ordering comes free with a correct weighted-sample pool.
    fleet = getattr(report, "fleet", report)
    assert fleet.tbt_p50_s <= fleet.tbt_p90_s <= fleet.tbt_p99_s
