"""Columnar engine core: unit tests and the columnar↔scalar oracle suite.

Two layers (tier 1 — see TESTING.md):

* unit tests for the struct-of-arrays :class:`RequestTable` (slot
  recycling, growth, lazy refresh, vectorized advance) and the
  :class:`EventClock` (heap and calendar backends, lazy cancellation,
  fire ordering);
* the property suite pinning the tentpole exactness claim: a full run
  with the columnar steady-run fast path enabled reproduces the scalar
  per-stage oracle (``columnar=False``) trajectory *exactly* — same
  finished ids in the same order, same completion/shed/admission
  ledgers, same virtual clocks, and an identical ``ServingReport`` —
  across all 8 invariant-suite configurations, plus both paging
  policies under heavy preemption.  Exact equality is deliberately
  stronger than the issue's 1e-9 tolerance: the fast path is built from
  bit-stable primitives, so any drift is a bug.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

import numpy as np  # noqa: E402

from repro.errors import ConfigError, SchedulingError  # noqa: E402
from repro.serving.columnar import EventClock, RequestTable  # noqa: E402
from repro.serving.request import Request  # noqa: E402

from test_invariants import CONFIGURATIONS, spec_strategy  # noqa: E402


# ----------------------------------------------------------------------
# RequestTable
# ----------------------------------------------------------------------
def _request(rid: int, input_len: int = 16, output_len: int = 8) -> Request:
    request = Request(
        request_id=rid,
        arrival_time_s=float(rid),
        input_len=input_len,
        output_len=output_len,
    )
    request.start_prefill()
    request.finish_prefill(float(rid) + 0.5)
    return request


class TestRequestTable:
    def test_add_free_recycles_slots_lifo(self):
        table = RequestTable(capacity=2)
        a = table.add(_request(1))
        b = table.add(_request(2))
        assert a != b and len(table) == 2
        table.free(1)
        assert 1 not in table and 2 in table
        assert table.add(_request(3)) == a  # LIFO recycling
        assert table.request_id[a] == 3

    def test_duplicate_add_rejected_and_unknown_free_is_noop(self):
        table = RequestTable(capacity=2)
        table.add(_request(7))
        with pytest.raises(SchedulingError):
            table.add(_request(7))
        table.free(999)  # silently ignored
        assert len(table) == 1

    def test_grows_by_doubling(self):
        table = RequestTable(capacity=2)
        for rid in range(5):
            table.add(_request(rid))
        assert table.capacity == 8
        assert len(table) == 5
        assert {int(table.request_id[table.slot_of(r)]) for r in range(5)} == set(range(5))

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            RequestTable(capacity=0)

    def test_refresh_advance_matches_object_layer(self):
        table = RequestTable(capacity=4)
        running = [_request(1, output_len=5), _request(2, output_len=9)]
        for request in running:
            table.add(request)
        slots = table.refresh(running)
        assert not table.dirty
        # finish_prefill emitted token 1, so request 1 needs 4 more stages.
        assert table.min_remaining() == 4
        table.advance_decode(3)
        assert list(table.tokens_generated[slots]) == [4, 4]
        assert list(table.context_len[slots]) == [r.context_len + 3 for r in running]
        # A scalar stage mutates the objects; refresh resyncs when dirty.
        running[0].advance_decode(0.0)
        table.dirty = True
        table.refresh(running)
        assert table.tokens_generated[table.slot_of(1)] == 2
        assert table.min_remaining() == 3

    def test_residency_flag(self):
        table = RequestTable(capacity=2)
        slot = table.add(_request(1))
        assert bool(table.kv_resident[slot])
        table.set_residency(1, False)
        assert not bool(table.kv_resident[slot])
        table.set_residency(404, True)  # unknown id: no-op


# ----------------------------------------------------------------------
# EventClock
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bucket_width_s", [None, 0.5, 2.0])
class TestEventClock:
    def test_fires_in_time_then_insertion_order(self, bucket_width_s):
        clock = EventClock(bucket_width_s=bucket_width_s)
        clock.schedule("b", 2.0)
        clock.schedule("a", 1.0)
        clock.schedule("c", 2.0)
        assert clock.next_time() == 1.0
        assert clock.pop_due(0.5) == []
        assert clock.pop_due(2.0) == ["a", "b", "c"]
        assert clock.next_time() == float("inf")
        assert len(clock) == 0

    def test_reschedule_moves_and_cancel_forgets(self, bucket_width_s):
        clock = EventClock(bucket_width_s=bucket_width_s)
        clock.schedule("a", 5.0)
        clock.schedule("b", 1.0)
        clock.schedule("a", 0.25)  # moved earlier
        clock.cancel("b")
        assert clock.next_time() == 0.25
        assert clock.pop_due(10.0) == ["a"]
        clock.cancel("missing")  # no-op

    def test_partial_bucket_drain_keeps_future_events(self, bucket_width_s):
        clock = EventClock(bucket_width_s=bucket_width_s)
        clock.extend([("early", 0.1), ("late", 0.4), ("far", 3.7)])
        assert clock.pop_due(0.2) == ["early"]
        # "late" may share a calendar bucket with "early"; it must survive
        # the partial drain and still fire later.
        assert clock.next_time() == 0.4
        assert clock.pop_due(5.0) == ["late", "far"]

    def test_rejects_non_finite_times(self, bucket_width_s):
        clock = EventClock(bucket_width_s=bucket_width_s)
        with pytest.raises(ConfigError):
            clock.schedule("a", float("inf"))


def test_clock_backends_agree_on_a_random_schedule():
    rng = np.random.default_rng(0)
    heap = EventClock()
    calendar = EventClock(bucket_width_s=0.3)
    for key in range(200):
        when = float(rng.uniform(0.0, 20.0))
        heap.schedule(key, when)
        calendar.schedule(key, when)
    for key in rng.choice(200, size=40, replace=False):
        heap.cancel(int(key))
        calendar.cancel(int(key))
    now = 0.0
    while heap.next_time() < float("inf") or calendar.next_time() < float("inf"):
        assert heap.next_time() == calendar.next_time()
        now += float(rng.uniform(0.1, 2.0))
        assert heap.pop_due(now) == calendar.pop_due(now)


def test_bad_bucket_width_rejected():
    with pytest.raises(ConfigError):
        EventClock(bucket_width_s=0.0)


# ----------------------------------------------------------------------
# columnar ↔ scalar oracle equivalence
# ----------------------------------------------------------------------
def _run_config(config: str, spec_params, seed: int, columnar: bool):
    """Run one invariant-suite config with the fast path on or off.

    The invariant builders attach a :class:`StageEvent` probe; observers
    force the scalar loop (batched runs would have to synthesize their
    per-stage events), so the probe is detached on both arms and the
    engines are pinned to the requested mode.
    """
    run, probe, recorder = CONFIGURATIONS[config](spec_params, seed)
    for engine in probe.engines:
        engine.observers.clear()
        engine.columnar = columnar
    report = run()
    return report, probe.engines


def _trajectory(report, engines):
    fleet = getattr(report, "fleet", report)
    return {
        "report": fleet,
        "routed": getattr(report, "requests_routed", None),
        "engines": [
            (
                engine.label,
                engine.stages,
                engine.measured,
                engine.completions,
                engine.now_s,
                tuple(engine.finished_ids),
                tuple(engine.handed_off_ids),
                tuple(engine.scheduler.admitted_log),
                tuple(r.request_id for r in engine.scheduler.rejected),
                tuple(
                    (r.request_id, r.context_len, r.tokens_generated)
                    for r in engine.scheduler.running
                ),
            )
            for engine in engines
        ],
    }


@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
@given(spec_params=spec_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_columnar_matches_scalar_oracle(config, spec_params, seed):
    fast_report, fast_engines = _run_config(config, spec_params, seed, columnar=True)
    oracle_report, oracle_engines = _run_config(config, spec_params, seed, columnar=False)
    assert _trajectory(fast_report, fast_engines) == _trajectory(
        oracle_report, oracle_engines
    )


@pytest.mark.paging
@pytest.mark.parametrize("policy", ["migrate", "recompute"])
def test_columnar_matches_scalar_under_paging_pressure(policy):
    """Heavy live preemption (thousands of evictions) stays bit-exact."""
    from repro.core.system import duplex_system
    from repro.models.config import mixtral
    from repro.serving.generator import WorkloadSpec
    from repro.serving.paging import EvictionPolicy, PagingConfig
    from repro.serving.simulator import ServingSimulator, SimulationLimits

    model = mixtral()
    system = duplex_system(model, co_processing=True, expert_tensor_parallel=True)
    spec = WorkloadSpec(lin_mean=30000, lout_mean=64, lin_cv=0.3, lout_cv=0.3, qps=40.0)
    limits = SimulationLimits(max_stages=600, warmup_stages=20)
    config = PagingConfig(policy=EvictionPolicy(policy))

    def run(columnar: bool):
        sim = ServingSimulator(
            system, model, spec, max_batch=64, seed=0, paging=config, columnar=columnar
        )
        report = sim.run(limits)
        stats = sim.paging.manager.stats
        return report, sim.engine, (stats.evictions, stats.resumes)

    fast_report, fast_engine, fast_stats = run(True)
    oracle_report, oracle_engine, oracle_stats = run(False)
    assert fast_stats == oracle_stats
    assert fast_stats[0] > 0, "the workload must actually exercise preemption"
    assert fast_report == oracle_report
    assert _trajectory(fast_report, [fast_engine]) == _trajectory(
        oracle_report, [oracle_engine]
    )
