"""Tests for trace recording/replay and SLO metrics."""

import pytest

from repro.core.system import gpu_system
from repro.core.executor import StageExecutor
from repro.errors import ConfigError, SchedulingError, SimulationError
from repro.models.config import mixtral
from repro.models.ops import OpCategory
from repro.serving.metrics import MetricsCollector
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.simulator import ServingSimulator, SimulationLimits
from repro.serving.trace import TraceRecord, TraceReplayGenerator, load_trace, save_trace


def make_records(n=5, gap=0.5):
    return [TraceRecord(arrival_s=i * gap, input_len=128 + i, output_len=16) for i in range(n)]


class TestTraceRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = make_records()
        assert save_trace(records, path) == 5
        assert load_trace(path) == records

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"arrival_s": 0, "input_len": 8, "output_len": 4}\n\n')
        assert len(load_trace(path)) == 1

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"arrival_s": 0}\n')
        with pytest.raises(ConfigError) as excinfo:
            load_trace(path)
        # `raise ... from error` keeps the parse failure on the chain.
        assert isinstance(excinfo.value.__cause__, KeyError)

    def test_malformed_value_keeps_cause_chain(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"arrival_s": "soon", "input_len": 8, "output_len": 4}\n')
        with pytest.raises(ConfigError) as excinfo:
            load_trace(path)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_unsorted_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(
            [
                TraceRecord(arrival_s=1.0, input_len=8, output_len=4),
                TraceRecord(arrival_s=0.5, input_len=8, output_len=4),
            ],
            path,
        )
        with pytest.raises(ConfigError):
            load_trace(path)

    def test_record_validation(self):
        with pytest.raises(ConfigError):
            TraceRecord(arrival_s=-1.0, input_len=8, output_len=4)
        with pytest.raises(ConfigError):
            TraceRecord(arrival_s=0.0, input_len=0, output_len=4)


class TestReplayGenerator:
    def test_replay_order_and_exhaustion(self):
        generator = TraceReplayGenerator(make_records(3))
        taken = []
        now = 10.0  # everything has arrived
        while generator.has_request_at(now):
            taken.append(generator.take(now))
        assert [r.input_len for r in taken] == [128, 129, 130]
        assert generator.exhausted
        assert generator.peek_arrival() == float("inf")

    def test_arrivals_respected(self):
        generator = TraceReplayGenerator(make_records(3, gap=1.0))
        assert generator.has_request_at(0.0)
        generator.take(0.0)
        assert not generator.has_request_at(0.5)
        assert generator.has_request_at(1.0)

    def test_time_scale_compresses_load(self):
        generator = TraceReplayGenerator(make_records(2, gap=1.0), time_scale=0.5)
        generator.take(0.0)
        assert generator.peek_arrival() == pytest.approx(0.5)

    def test_take_after_exhaustion_rejected(self):
        generator = TraceReplayGenerator(make_records(1))
        generator.take(0.0)
        with pytest.raises(ConfigError):
            generator.take(0.0)

    def test_take_before_arrival_rejected(self):
        # Regression: take(now_s) used to ignore now_s entirely, handing a
        # request out before it had arrived.
        generator = TraceReplayGenerator(make_records(2, gap=1.0))
        generator.take(0.0)  # first record arrives at t=0
        with pytest.raises(SchedulingError):
            generator.take(0.5)  # second arrives at t=1.0
        # The early take must not consume the request.
        assert generator.remaining == 1
        assert generator.take(1.0).input_len == 129

    def test_take_respects_time_scale(self):
        generator = TraceReplayGenerator(make_records(2, gap=1.0), time_scale=2.0)
        generator.take(0.0)
        with pytest.raises(SchedulingError):
            generator.take(1.5)  # scaled arrival is 2.0
        assert generator.take(2.0) is not None

    def test_unsorted_records_rejected_at_construction(self):
        # Regression: only load_trace validated ordering; a directly
        # constructed generator could replay time-travelling arrivals.
        records = [
            TraceRecord(arrival_s=1.0, input_len=8, output_len=4),
            TraceRecord(arrival_s=0.5, input_len=8, output_len=4),
        ]
        with pytest.raises(ConfigError):
            TraceReplayGenerator(records)

    def test_zero_time_scale_rejected(self):
        with pytest.raises(ConfigError):
            TraceReplayGenerator(make_records(1), time_scale=0.0)

    def test_peek_take_return_same_request(self):
        generator = TraceReplayGenerator(make_records(2))
        peeked = generator.peek()
        assert generator.take(0.0) is peeked
        assert generator.remaining == 1

    def test_worst_case_tokens(self):
        generator = TraceReplayGenerator(make_records(5))
        assert generator.worst_case_tokens() == 132 + 16  # largest input + output

    def test_worst_case_of_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            TraceReplayGenerator([]).worst_case_tokens()

    def test_drives_the_scheduler_end_to_end(self):
        model = mixtral()
        system = gpu_system(model)
        executor = StageExecutor(system, model, seed=0)
        generator = TraceReplayGenerator(make_records(4, gap=0.0))
        scheduler = ContinuousBatchingScheduler(generator, max_batch=4)
        stages = 0
        while True:
            workload = scheduler.build_stage()
            if workload is None:
                break
            result = executor.run_stage(workload)
            scheduler.complete_stage(result.latency_s)
            stages += 1
        assert generator.exhausted
        assert stages == 16  # one prefill + 15 decode stages for lout 16


class TestSimulatorReplay:
    """The simulator accepts a trace replayer as its request source."""

    def _records(self):
        return [
            TraceRecord(arrival_s=i * 0.2, input_len=256 + 16 * i, output_len=32)
            for i in range(12)
        ]

    def test_trace_drives_the_simulator(self):
        model = mixtral()
        sim = ServingSimulator(
            gpu_system(model), model, TraceReplayGenerator(self._records()),
            max_batch=8, seed=0,
        )
        report = sim.run(SimulationLimits(max_stages=600, warmup_stages=0))
        # A finite trace runs to exhaustion: every request completes.
        assert report.requests_completed == 12
        assert report.tokens_generated == 12 * 32

    def test_round_trip_preserves_per_request_metrics(self, tmp_path):
        # Satellite acceptance: save -> load -> replay gives *identical*
        # per-request metrics, bit for bit.
        model = mixtral()

        def run_from(generator):
            executor = StageExecutor(gpu_system(model), model, seed=0)
            scheduler = ContinuousBatchingScheduler(generator, max_batch=8)
            per_request = {}
            while True:
                workload = scheduler.build_stage()
                if workload is None:
                    if generator.exhausted:
                        break
                    scheduler.now_s = generator.peek_arrival()
                    continue
                result = executor.run_stage(workload)
                for request in scheduler.complete_stage(result.latency_s):
                    per_request[request.request_id] = (request.t2ft_s, request.e2e_s)
            return per_request

        records = self._records()
        path = tmp_path / "trace.jsonl"
        save_trace(records, path)
        original = run_from(TraceReplayGenerator(records))
        replayed = run_from(TraceReplayGenerator(load_trace(path)))
        assert original == replayed
        assert len(original) == 12


class TestSloMetrics:
    def _collector(self):
        collector = MetricsCollector()
        for latency, tokens in ((0.005, 90), (0.050, 10)):
            collector.record_stage(
                latency_s=latency,
                is_mixed=False,
                decode_tokens=tokens,
                total_tokens_generated=tokens,
                dram_energy={OpCategory.MOE: 1.0},
                compute_energy={},
                comm_energy_j=0.0,
            )
        collector.record_first_token(0.2)
        collector.record_first_token(0.9)
        return collector

    def test_tbt_attainment(self):
        collector = self._collector()
        assert collector.tbt_slo_attainment(0.010) == pytest.approx(0.9)
        assert collector.tbt_slo_attainment(0.100) == 1.0

    def test_t2ft_attainment(self):
        collector = self._collector()
        assert collector.t2ft_slo_attainment(0.5) == pytest.approx(0.5)

    def test_bad_slo_rejected(self):
        with pytest.raises(ConfigError):
            self._collector().tbt_slo_attainment(0.0)

    def test_empty_collector_rejected(self):
        with pytest.raises(SimulationError):
            MetricsCollector().tbt_slo_attainment(0.1)
