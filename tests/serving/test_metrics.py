"""Tests for serving metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.models.ops import OpCategory
from repro.serving.metrics import MetricsCollector, weighted_percentile


class TestWeightedPercentile:
    def test_uniform_weights_match_median(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        weights = np.ones(5)
        assert weighted_percentile(values, weights, 50) == 3.0

    def test_heavy_weight_dominates(self):
        values = np.array([1.0, 100.0])
        weights = np.array([99.0, 1.0])
        assert weighted_percentile(values, weights, 50) == 1.0
        assert weighted_percentile(values, weights, 99.5) == 100.0

    def test_unsorted_input(self):
        values = np.array([5.0, 1.0, 3.0])
        weights = np.ones(3)
        assert weighted_percentile(values, weights, 0) == 1.0
        assert weighted_percentile(values, weights, 100) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            weighted_percentile(np.array([]), np.array([]), 50)

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ConfigError):
            weighted_percentile(np.array([1.0]), np.array([1.0]), 101)

    @given(q=st.floats(0, 100), values=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
    def test_result_is_an_observed_value(self, q, values):
        arr = np.asarray(values)
        result = weighted_percentile(arr, np.ones(arr.size), q)
        assert result in arr

    def test_single_sample_is_every_percentile(self):
        values = np.array([7.5])
        weights = np.array([3.0])
        for q in (0, 50, 100):
            assert weighted_percentile(values, weights, q) == 7.5

    def test_zero_weight_entries_are_ignored(self):
        # A zero-weight value owns no cumulative mass and must never be
        # returned, at any percentile.
        values = np.array([1.0, 2.0, 3.0])
        weights = np.array([1.0, 0.0, 1.0])
        assert weighted_percentile(values, weights, 50) == 1.0
        assert weighted_percentile(values, weights, 51) == 3.0
        assert weighted_percentile(values, weights, 100) == 3.0

    def test_zero_weight_smallest_value_never_returned(self):
        # Regression: with side="left" a zero-weight smallest value used to
        # survive the cumsum and win every low percentile.
        values = np.array([1.0, 2.0])
        weights = np.array([0.0, 1.0])
        for q in (0, 10, 50, 100):
            assert weighted_percentile(values, weights, q) == 2.0

    def test_all_zero_weights_rejected(self):
        with pytest.raises(SimulationError):
            weighted_percentile(np.array([1.0, 2.0]), np.zeros(2), 50)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigError):
            weighted_percentile(np.array([1.0, 2.0]), np.array([1.0, -1.0]), 50)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ConfigError):
            weighted_percentile(np.array([1.0, 2.0]), np.array([1.0]), 50)

    @given(q=st.floats(0, 100), values=st.lists(st.floats(0.1, 1e6), min_size=2, max_size=20))
    def test_result_always_carries_weight(self, q, values):
        arr = np.asarray(values)
        weights = np.ones(arr.size)
        weights[::2] = 0.0  # zero out every other entry
        result = weighted_percentile(arr, weights, q)
        assert result in arr[weights > 0]

    def test_q_zero_returns_smallest_value(self):
        values = np.array([4.0, 2.0, 9.0])
        weights = np.array([1.0, 5.0, 1.0])
        assert weighted_percentile(values, weights, 0) == 2.0

    def test_q_hundred_returns_largest_weighted_value(self):
        values = np.array([4.0, 2.0, 9.0])
        weights = np.array([1.0, 5.0, 1.0])
        assert weighted_percentile(values, weights, 100) == 9.0

    def test_negative_percentile_rejected(self):
        with pytest.raises(ConfigError):
            weighted_percentile(np.array([1.0]), np.array([1.0]), -0.1)


class TestMergedCollectors:
    def _collector(self, latency, tokens, idle=0.0):
        collector = MetricsCollector()
        collector.effective_batch = 8
        collector.record_stage(
            latency_s=latency,
            is_mixed=False,
            decode_tokens=tokens,
            total_tokens_generated=tokens,
            dram_energy={OpCategory.MOE: 1.0},
            compute_energy={},
            comm_energy_j=0.0,
        )
        if idle:
            collector.record_idle(idle)
        return collector

    def test_merge_pools_samples_and_takes_max_elapsed(self):
        fast = self._collector(latency=0.01, tokens=10)
        slow = self._collector(latency=0.04, tokens=10, idle=0.06)
        fleet = MetricsCollector.merged([fast, slow]).report()
        assert fleet.tokens_generated == 20
        assert fleet.elapsed_s == pytest.approx(0.1)  # max, not sum
        assert fleet.tbt_p50_s in (0.01, 0.04)
        assert fleet.energy_by_component["moe:dram"] == pytest.approx(2.0)
        assert fleet.effective_batch == 16

    def test_merge_of_empty_collectors_rejected(self):
        with pytest.raises(SimulationError):
            MetricsCollector.merged([MetricsCollector()]).report()

    def test_merge_of_no_collectors_is_empty(self):
        fleet = MetricsCollector.merged([])
        assert fleet.stages_recorded == 0
        with pytest.raises(SimulationError):
            fleet.report()

    def test_merge_skips_empty_members_without_distortion(self):
        # An idle replica (nothing recorded) must not shift percentiles,
        # counts, or the wall clock of the pooled report.
        busy = self._collector(latency=0.02, tokens=10, idle=0.03)
        alone = busy.report()
        pooled = MetricsCollector.merged([MetricsCollector(), busy, MetricsCollector()]).report()
        assert pooled.tokens_generated == alone.tokens_generated
        assert pooled.elapsed_s == alone.elapsed_s
        assert pooled.tbt_p50_s == alone.tbt_p50_s
        assert pooled.requests_completed == alone.requests_completed

    def test_merge_unions_heterogeneous_tenant_keys(self):
        left = self._collector(latency=0.01, tokens=4)
        left.record_first_token(0.1, tenant="interactive", slo_s=0.5)
        left.record_completion(1.0, tenant="interactive")
        right = self._collector(latency=0.01, tokens=4)
        right.record_first_token(0.8, tenant="batch", slo_s=0.5)
        right.record_completion(3.0, tenant="batch")
        right.record_first_token(0.2, tenant="interactive", slo_s=0.5)
        right.record_completion(1.5, tenant="interactive")
        report = MetricsCollector.merged([left, right]).report()
        assert set(report.per_tenant) == {"interactive", "batch"}
        assert report.per_tenant["interactive"]["requests_completed"] == 2.0
        assert report.per_tenant["batch"]["requests_completed"] == 1.0
        # SLO attainment counters union too: interactive met 2/2, batch 0/1.
        assert report.per_tenant["interactive"]["t2ft_slo_attainment"] == pytest.approx(1.0)
        assert report.per_tenant["batch"]["t2ft_slo_attainment"] == pytest.approx(0.0)

    def test_merge_with_one_sided_tenant_samples(self):
        # A tenant with first tokens recorded but no completions (still
        # mid-flight on one replica) must survive the union.
        left = self._collector(latency=0.01, tokens=4)
        left.record_first_token(0.1, tenant="a")
        right = self._collector(latency=0.01, tokens=4)
        right.record_completion(2.0, tenant="b")
        report = MetricsCollector.merged([left, right]).report()
        assert set(report.per_tenant) == {"a", "b"}
        assert report.per_tenant["a"]["requests_completed"] == 0.0
        assert report.per_tenant["a"]["t2ft_p50_s"] == pytest.approx(0.1)
        assert report.per_tenant["b"]["e2e_p50_s"] == pytest.approx(2.0)

    def test_merge_idle_time_accounting(self):
        # Idle time lives in elapsed (max across replicas) but not in
        # busy time (summed): a mostly-idle replica drags fleet
        # throughput down without inflating fleet work done.
        worker = self._collector(latency=0.05, tokens=50)
        idler = self._collector(latency=0.01, tokens=2, idle=0.99)
        fleet = MetricsCollector.merged([worker, idler])
        assert fleet.elapsed_s == pytest.approx(1.0)  # the idler's clock
        assert fleet.busy_s == pytest.approx(0.06)  # work sums, idle does not
        report = fleet.report()
        assert report.throughput_tokens_per_s == pytest.approx(52 / 1.0)

    def test_busy_time_tracks_recorded_stages(self):
        collector = self._collector(latency=0.04, tokens=10)
        assert collector.busy_s == pytest.approx(0.04)
        collector.record_idle(0.5)
        assert collector.busy_s == pytest.approx(0.04)  # idle excluded
        assert collector.elapsed_s == pytest.approx(0.54)


class TestCollector:
    def _record_simple(self, collector, latency=0.01, mixed=False, decode_tokens=8):
        collector.record_stage(
            latency_s=latency,
            is_mixed=mixed,
            decode_tokens=decode_tokens,
            total_tokens_generated=decode_tokens + (1 if mixed else 0),
            dram_energy={OpCategory.MOE: 1.0},
            compute_energy={OpCategory.FC: 0.5},
            comm_energy_j=0.1,
        )

    def test_throughput(self):
        collector = MetricsCollector()
        for _ in range(10):
            self._record_simple(collector, latency=0.01, decode_tokens=8)
        report = collector.report()
        assert report.throughput_tokens_per_s == pytest.approx(800.0)

    def test_stage_ratio(self):
        collector = MetricsCollector()
        for i in range(10):
            self._record_simple(collector, mixed=(i == 0))
        assert collector.report().decoding_only_stage_ratio == pytest.approx(0.9)

    def test_tbt_percentiles_weighted_by_tokens(self):
        collector = MetricsCollector()
        self._record_simple(collector, latency=0.001, decode_tokens=99)
        self._record_simple(collector, latency=1.0, decode_tokens=1)
        report = collector.report()
        assert report.tbt_p50_s == pytest.approx(0.001)
        assert report.tbt_p99_s == pytest.approx(0.001)

    def test_energy_accounting(self):
        collector = MetricsCollector()
        self._record_simple(collector, decode_tokens=16)
        report = collector.report()
        assert report.energy_by_component["moe:dram"] == 1.0
        assert report.energy_by_component["fc:compute"] == 0.5
        assert report.energy_by_component["fabric"] == pytest.approx(0.1)
        assert report.energy_per_token_j == pytest.approx(1.6 / 16)

    def test_latency_metrics(self):
        collector = MetricsCollector()
        self._record_simple(collector)
        collector.record_first_token(0.2)
        collector.record_first_token(0.4)
        collector.record_completion(2.0)
        report = collector.report()
        assert report.t2ft_p50_s == pytest.approx(0.3)
        assert report.e2e_p50_s == pytest.approx(2.0)
        assert report.requests_completed == 1

    def test_idle_time_counts_toward_elapsed(self):
        collector = MetricsCollector()
        self._record_simple(collector, latency=0.01, decode_tokens=10)
        collector.record_idle(0.09)
        assert collector.report().throughput_tokens_per_s == pytest.approx(100.0)

    def test_empty_report_rejected(self):
        with pytest.raises(SimulationError):
            MetricsCollector().report()

    def test_non_positive_latency_rejected(self):
        collector = MetricsCollector()
        with pytest.raises(SimulationError):
            self._record_simple(collector, latency=0.0)
