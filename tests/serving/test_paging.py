"""Tests for KV migration and recomputation (Section VIII-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigError, SchedulingError
from repro.serving.paging import EvictionPolicy, HostLink, PagedKvManager, PagingConfig

pytestmark = pytest.mark.paging


def make_manager(capacity=1000, policy=EvictionPolicy.MIGRATE, host_capacity=None):
    return PagedKvManager(
        capacity_tokens=capacity,
        kv_bytes_per_token=1024.0,
        policy=policy,
        host_capacity_tokens=host_capacity,
    )


class TestHostLink:
    def test_transfer_time(self):
        link = HostLink(bandwidth=64e9, latency_s=10e-6)
        assert link.transfer_time(64e9) == pytest.approx(1.0 + 10e-6)

    def test_zero_transfer_free(self):
        assert HostLink().transfer_time(0) == 0.0

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            HostLink(bandwidth=0)


class TestAdmission:
    def test_admit_and_release(self):
        manager = make_manager()
        manager.admit(1, 400)
        manager.admit(2, 400)
        assert manager.resident_tokens == 800
        manager.release(1)
        assert manager.resident_tokens == 400

    def test_overflow_rejected(self):
        manager = make_manager(capacity=500)
        manager.admit(1, 400)
        with pytest.raises(CapacityError):
            manager.admit(2, 200)

    def test_oversized_request_rejected(self):
        with pytest.raises(CapacityError):
            make_manager(capacity=100).admit(1, 200)

    def test_double_admit_rejected(self):
        manager = make_manager()
        manager.admit(1, 100)
        with pytest.raises(SchedulingError):
            manager.admit(1, 100)

    def test_release_unknown_rejected(self):
        with pytest.raises(SchedulingError):
            make_manager().release(9)


class TestMigration:
    def test_eviction_frees_device_and_charges_link(self):
        manager = make_manager(capacity=500)
        manager.admit(1, 400)
        outcome = manager.evict(1, cached_tokens=300)
        assert manager.resident_tokens == 0
        assert manager.evicted_tokens == 400
        # 300 tokens * 1 KiB over 64 GB/s plus latency.
        assert outcome.transfer_time_s == pytest.approx(300 * 1024 / 64e9 + 10e-6)
        assert manager.stats.evictions == 1

    def test_resume_brings_kv_back(self):
        manager = make_manager(capacity=500)
        manager.admit(1, 400)
        manager.evict(1, cached_tokens=300)
        outcome = manager.resume(1, cached_tokens=300)
        assert manager.resident_tokens == 400
        assert outcome.transfer_time_s > 0
        assert manager.stats.migrated_in_bytes == manager.stats.migrated_out_bytes

    def test_resume_requires_room(self):
        manager = make_manager(capacity=500)
        manager.admit(1, 400)
        manager.evict(1, cached_tokens=100)
        manager.admit(2, 300)
        with pytest.raises(CapacityError):
            manager.resume(1, cached_tokens=100)

    def test_host_capacity_enforced(self):
        manager = make_manager(capacity=500, host_capacity=300)
        manager.admit(1, 400)
        with pytest.raises(CapacityError):
            manager.evict(1, cached_tokens=200)


class TestRecompute:
    def test_eviction_is_free(self):
        manager = make_manager(policy=EvictionPolicy.RECOMPUTE)
        manager.admit(1, 400)
        outcome = manager.evict(1, cached_tokens=250)
        assert outcome.transfer_time_s == 0.0
        assert outcome.recompute_tokens == 0

    def test_resume_carries_recompute_debt(self):
        manager = make_manager(policy=EvictionPolicy.RECOMPUTE)
        manager.admit(1, 400)
        manager.evict(1, cached_tokens=250)
        outcome = manager.resume(1, cached_tokens=250)
        assert outcome.recompute_tokens == 250
        assert manager.stats.recomputed_tokens == 250


class TestAbusePaths:
    """Misuse must fail loudly and leave the accounting intact."""

    def test_double_evict_rejected(self):
        manager = make_manager()
        manager.admit(1, 200)
        manager.evict(1, cached_tokens=100)
        with pytest.raises(SchedulingError):
            manager.evict(1, cached_tokens=100)
        assert manager.resident_tokens + manager.evicted_tokens == 200

    def test_resume_of_never_evicted_id_rejected(self):
        manager = make_manager()
        manager.admit(1, 200)
        with pytest.raises(SchedulingError):
            manager.resume(2, cached_tokens=100)
        with pytest.raises(SchedulingError):
            manager.resume(1, cached_tokens=100)  # resident, not evicted
        assert manager.resident_tokens == 200
        assert manager.evicted_tokens == 0

    def test_evict_of_unknown_id_rejected(self):
        with pytest.raises(SchedulingError):
            make_manager().evict(9, cached_tokens=10)

    def test_cached_tokens_beyond_reservation_rejected(self):
        manager = make_manager()
        manager.admit(1, 200)
        with pytest.raises(ConfigError):
            manager.evict(1, cached_tokens=201)
        # The failed evict must not leak the reservation out of residency.
        assert manager.resident_tokens + manager.evicted_tokens == 200
        manager.evict(1, cached_tokens=200)
        assert manager.resident_tokens + manager.evicted_tokens == 200

    def test_release_of_evicted_request_rejected(self):
        manager = make_manager()
        manager.admit(1, 200)
        manager.evict(1, cached_tokens=50)
        with pytest.raises(SchedulingError):
            manager.release(1)
        assert manager.evicted_tokens == 200

    def test_pick_victims_when_no_set_suffices(self):
        manager = make_manager(capacity=1000)
        manager.admit(1, 300)
        manager.admit(2, 300)
        before = manager.resident_tokens
        with pytest.raises(CapacityError):
            manager.pick_victims(needed_tokens=1001)
        # Selection is read-only: a failed pick evicts nothing.
        assert manager.resident_tokens == before
        assert manager.evicted_tokens == 0

    def test_readmit_while_evicted_rejected(self):
        manager = make_manager()
        manager.admit(1, 200)
        manager.evict(1, cached_tokens=100)
        with pytest.raises(SchedulingError):
            manager.admit(1, 200)


class TestPagingConfig:
    def test_defaults(self):
        config = PagingConfig()
        assert config.policy is EvictionPolicy.MIGRATE
        assert config.host_capacity_tokens is None
        assert config.link.bandwidth > 0

    def test_bad_host_capacity_rejected(self):
        with pytest.raises(ConfigError):
            PagingConfig(host_capacity_tokens=0)


class TestVictimSelection:
    def test_largest_first(self):
        manager = make_manager(capacity=1000)
        manager.admit(1, 500)
        manager.admit(2, 300)
        manager.admit(3, 200)
        victims = manager.pick_victims(needed_tokens=400)
        assert victims == [1]

    def test_multiple_victims_when_needed(self):
        manager = make_manager(capacity=1000)
        manager.admit(1, 400)
        manager.admit(2, 400)
        manager.admit(3, 200)
        victims = manager.pick_victims(needed_tokens=900)
        assert set(victims) == {1, 2, 3} or len(victims) >= 2

    def test_impossible_request_rejected(self):
        manager = make_manager(capacity=100)
        manager.admit(1, 50)
        with pytest.raises(CapacityError):
            manager.pick_victims(needed_tokens=500)

    def test_no_eviction_needed_returns_empty(self):
        manager = make_manager(capacity=1000)
        manager.admit(1, 100)
        assert manager.pick_victims(needed_tokens=200) == []

    def test_explicit_order_is_followed(self):
        manager = make_manager(capacity=1000)
        manager.admit(1, 500)
        manager.admit(2, 300)
        manager.admit(3, 200)
        # Largest-first would take request 1 alone; the policy order wins.
        assert manager.pick_victims(needed_tokens=400, order=[3, 2, 1]) == [3, 2]

    def test_order_excludes_protected_requests(self):
        manager = make_manager(capacity=1000)
        manager.admit(1, 600)
        manager.admit(2, 300)
        # Request 1 is protected (off the list); 2 alone cannot free 500.
        with pytest.raises(CapacityError):
            manager.pick_victims(needed_tokens=500, order=[2])

    def test_order_with_unknown_id_rejected(self):
        manager = make_manager(capacity=1000)
        manager.admit(1, 500)
        with pytest.raises(SchedulingError):
            manager.pick_victims(needed_tokens=600, order=[1, 7])


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(reservations=st.lists(st.integers(1, 200), min_size=1, max_size=12))
    def test_tokens_conserved_through_evict_resume(self, reservations):
        manager = make_manager(capacity=sum(reservations))
        for rid, tokens in enumerate(reservations):
            manager.admit(rid, tokens)
        total = manager.resident_tokens
        manager.evict(0, cached_tokens=reservations[0])
        assert manager.resident_tokens + manager.evicted_tokens == total
        manager.resume(0, cached_tokens=reservations[0])
        assert manager.resident_tokens == total
        assert manager.evicted_tokens == 0


class TestStatsSnapshot:
    """SL005 regression: ``manager.stats`` is an immutable snapshot.

    The pre-simlint ``PagingStats`` was a mutable dataclass the manager
    updated in place — any report or test that captured ``.stats`` held
    an alias that kept changing as the run went on.  These tests pin the
    frozen-snapshot contract that replaced it.
    """

    def test_snapshot_does_not_change_retroactively(self):
        manager = make_manager(capacity=500)
        manager.admit(1, 400)
        manager.evict(1, cached_tokens=300)
        before = manager.stats
        assert before.evictions == 1
        manager.resume(1, cached_tokens=300)
        manager.evict(1, cached_tokens=300)
        assert before.evictions == 1, "captured snapshot must not change under its feet"
        assert manager.stats.evictions == 2
        assert manager.stats.resumes == 1

    def test_snapshot_is_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            make_manager().stats.evictions = 7

    def test_seeded_runs_accumulate_identically(self):
        """Same operation sequence -> equal snapshots, field for field."""

        def run():
            manager = make_manager(capacity=500, policy=EvictionPolicy.RECOMPUTE)
            manager.admit(1, 300)
            manager.admit(2, 200)
            manager.evict(1, cached_tokens=250)
            manager.resume(1, cached_tokens=250)
            manager.evict(2, cached_tokens=100)
            return manager.stats

        assert run() == run()
