"""Tests for the workload scenario library and its registry."""

import numpy as np
import pytest

from repro.core.system import duplex_system
from repro.errors import ConfigError
from repro.models.config import mixtral
from repro.serving.scenarios import (
    BimodalLengths,
    BurstyArrivals,
    DiurnalArrivals,
    GaussianLengths,
    LognormalLengths,
    PoissonArrivals,
    ReplayedArrivals,
    Scenario,
    TenantSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.serving.simulator import ServingSimulator, SimulationLimits

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)


def _first_n(process, n, seed=0):
    stream = process.stream(np.random.default_rng(seed))
    return [next(stream) for _ in range(n)]


class TestArrivalProcesses:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(qps=5.0),
            BurstyArrivals(base_qps=2.0, burst_qps=20.0, mean_calm_s=5.0, mean_burst_s=2.0),
            DiurnalArrivals(base_qps=2.0, peak_qps=10.0, period_s=60.0),
            ReplayedArrivals(times_s=(0.0, 0.5, 0.5, 2.0)),
        ],
        ids=["poisson", "bursty", "diurnal", "replayed"],
    )
    def test_streams_are_non_decreasing_and_reproducible(self, process):
        times = _first_n(process, 200)
        assert all(b >= a for a, b in zip(times, times[1:], strict=False))
        assert all(t >= 0 for t in times)
        assert times == _first_n(process, 200)  # same seed, same stream

    def test_poisson_empirical_rate_matches(self):
        times = _first_n(PoissonArrivals(qps=20.0), 4000)
        assert times[-1] == pytest.approx(4000 / 20.0, rel=0.1)

    def test_bursty_mixes_two_rates(self):
        process = BurstyArrivals(base_qps=1.0, burst_qps=100.0, mean_calm_s=5.0, mean_burst_s=5.0)
        gaps = np.diff(_first_n(process, 3000))
        # Burst gaps cluster near 10ms, calm gaps near 1s: both present.
        assert (gaps < 0.05).mean() > 0.3
        assert (gaps > 0.2).mean() > 0.005
        assert 1.0 < process.mean_qps < 100.0

    def test_diurnal_rate_swings_with_phase(self):
        process = DiurnalArrivals(base_qps=1.0, peak_qps=9.0, period_s=100.0)
        quarter, three_quarters = process.rate_at(25.0), process.rate_at(75.0)
        assert quarter == pytest.approx(9.0)  # sin peak
        assert three_quarters == pytest.approx(1.0)  # sin trough
        assert process.mean_qps == pytest.approx(5.0)

    def test_replayed_pattern_repeats_shifted(self):
        process = ReplayedArrivals(times_s=(0.0, 1.0, 2.0))
        times = _first_n(process, 6)
        assert times[:3] == [0.0, 1.0, 2.0]
        assert times[3] > times[2]
        assert times[4] - times[3] == pytest.approx(1.0)

    def test_scaling_compresses_arrivals(self):
        base = PoissonArrivals(qps=4.0)
        doubled = base.scaled(2.0)
        assert doubled.mean_qps == pytest.approx(8.0)
        assert ReplayedArrivals((0.0, 4.0)).scaled(2.0).times_s == (0.0, 2.0)

    def test_replayed_scaling_is_rate_exact(self):
        # Scaling pins the repetition period, so mean_qps scales exactly —
        # including single-timestamp patterns whose derived span is clamped.
        for pattern in (ReplayedArrivals((0.5,)), ReplayedArrivals((0.0,)),
                        ReplayedArrivals((0.0, 1.0, 1.5))):
            assert pattern.scaled(2.0).mean_qps == pytest.approx(2.0 * pattern.mean_qps)
            assert pattern.scaled(0.5).mean_qps == pytest.approx(0.5 * pattern.mean_qps)
        explicit = ReplayedArrivals((0.0, 1.0), period_s=10.0)
        assert explicit.mean_qps == pytest.approx(0.2)
        times = _first_n(explicit, 4)
        assert times == [0.0, 1.0, 10.0, 11.0]
        with pytest.raises(ConfigError):
            ReplayedArrivals((0.0, 5.0), period_s=4.0)  # period shorter than pattern

    def test_invalid_processes_rejected(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(qps=0.0)
        with pytest.raises(ConfigError):
            BurstyArrivals(base_qps=5.0, burst_qps=1.0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(base_qps=5.0, peak_qps=1.0)
        with pytest.raises(ConfigError):
            ReplayedArrivals(times_s=(1.0, 0.5))
        with pytest.raises(ConfigError):
            # Zero-span patterns would freeze time when repeated.
            ReplayedArrivals(times_s=(0.0, 0.0))


class TestLengthDistributions:
    def test_gaussian_matches_workload_spec_worst_case(self):
        lengths = GaussianLengths(1024, 256, lin_cv=0.5, lout_cv=0.5)
        assert lengths.worst_case_tokens() == int(1024 * 2.5 + 256 * 2.5)

    def test_lognormal_is_heavy_tailed_but_capped(self):
        lengths = LognormalLengths(512, 64, sigma=0.8, max_factor=8.0)
        rng = np.random.default_rng(0)
        samples = [lengths.sample(rng) for _ in range(2000)]
        lins = np.asarray([s[0] for s in samples])
        assert lins.max() <= 512 * 8
        assert lins.min() >= 4
        assert lins.max() > np.median(lins) * 3  # a real tail
        assert (lins + np.asarray([s[1] for s in samples])).max() <= lengths.worst_case_tokens()

    def test_bimodal_mixes_modes(self):
        lengths = BimodalLengths(
            chat=GaussianLengths(128, 64),
            summarize=GaussianLengths(4096, 64),
            summarize_fraction=0.5,
        )
        rng = np.random.default_rng(0)
        lins = {lengths.sample(rng)[0] for _ in range(50)}
        assert lins == {128, 4096}
        assert lengths.worst_case_tokens() == 4096 + 64


class TestScenarioSource:
    def _scenario(self):
        return Scenario(
            name="two-tenants",
            arrivals=PoissonArrivals(qps=50.0),
            tenants=(
                TenantSpec("a", GaussianLengths(64, 16), weight=3.0, t2ft_slo_s=0.5),
                TenantSpec("b", GaussianLengths(256, 16), weight=1.0),
            ),
        )

    def test_requests_tagged_with_tenant_and_slo(self):
        source = self._scenario().source(seed=1)
        tenants = set()
        for _ in range(100):
            request = source.take(1e9)
            tenants.add(request.tenant)
            if request.tenant == "a":
                assert request.t2ft_slo_s == 0.5
                assert request.input_len == 64
            else:
                assert request.t2ft_slo_s is None
        assert tenants == {"a", "b"}

    def test_weights_steer_the_mix(self):
        source = self._scenario().source(seed=2)
        sample = [source.take(1e9).tenant for _ in range(400)]
        share = sample.count("a") / len(sample)
        assert 0.65 < share < 0.85  # weight 3:1

    def test_max_requests_makes_source_finite(self):
        source = self._scenario().source(seed=0, max_requests=5)
        for _ in range(5):
            source.take(1e9)
        assert source.peek() is None
        assert source.peek_arrival() == float("inf")

    def test_at_qps_rescales_load(self):
        scenario = self._scenario().at_qps(10.0)
        assert scenario.mean_qps == pytest.approx(10.0)

    def test_worst_case_sizes_the_batch(self):
        assert self._scenario().worst_case_tokens() == 256 + 16

    def test_drives_the_simulator_with_per_tenant_metrics(self):
        source = self._scenario().source(seed=0)
        report = ServingSimulator(SYSTEM, MODEL, source, max_batch=8, seed=0).run(
            SimulationLimits(max_stages=120, warmup_stages=4)
        )
        assert report.requests_completed > 0
        assert set(report.per_tenant) <= {"a", "b"}
        assert "a" in report.per_tenant
        stats = report.per_tenant["a"]
        assert stats["requests_completed"] > 0
        assert 0.0 <= stats["t2ft_slo_attainment"] <= 1.0
        assert "t2ft_slo_attainment" not in report.per_tenant.get("b", {})


class TestRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        assert {
            "steady-chat",
            "bursty-chat",
            "diurnal-mixed",
            "heavy-tail-summarize",
            "multi-tenant-slo",
            "replayed-spike",
        } <= set(names)
        assert list(names) == sorted(names)

    def test_lookup_builds_fresh_specifications(self):
        first, second = get_scenario("steady-chat"), get_scenario("steady-chat")
        assert first == second
        assert first is not second

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ConfigError, match="steady-chat"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected_unless_overwritten(self):
        factory = lambda: get_scenario("steady-chat")  # noqa: E731
        register_scenario("test-dup-scenario", factory)
        try:
            with pytest.raises(ConfigError):
                register_scenario("test-dup-scenario", factory)
            register_scenario("test-dup-scenario", factory, overwrite=True)
        finally:
            from repro.serving import scenarios

            scenarios._REGISTRY.pop("test-dup-scenario", None)

    def test_every_builtin_generates_sane_traffic(self):
        for name in scenario_names():
            source = get_scenario(name).source(seed=0, max_requests=20)
            last = 0.0
            for _ in range(20):
                request = source.take(1e9)
                assert request.arrival_time_s >= last
                last = request.arrival_time_s
                assert request.input_len >= 1
                assert request.output_len >= 1
                assert request.tenant is not None
