"""Tests for the discrete-event serving core."""

import pytest

from repro.core.executor import StageExecutor
from repro.core.system import duplex_system
from repro.errors import SchedulingError
from repro.models.config import mixtral
from repro.serving.engine import ServingEngine, SimulationLimits, TransferFeed
from repro.serving.generator import QueueSource, RequestGenerator, WorkloadSpec
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import ContinuousBatchingScheduler

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)


def _request(rid, arrival=0.0, lin=32, lout=8, state=RequestState.QUEUED):
    request = Request(request_id=rid, arrival_time_s=arrival, input_len=lin, output_len=lout)
    if state is RequestState.DECODING:
        request.start_prefill()
        request.finish_prefill(arrival)
    return request


def _engine(source=None, max_batch=4, **kwargs):
    source = source if source is not None else RequestGenerator(WorkloadSpec(32, 8), seed=0)
    scheduler = ContinuousBatchingScheduler(source, max_batch, capacity_tokens=None)
    executor = StageExecutor(SYSTEM, MODEL, seed=0)
    return ServingEngine(scheduler, executor, label="test", **kwargs)


class TestTransferFeed:
    def test_orders_by_ready_time_then_push_order(self):
        feed = TransferFeed()
        feed.push(2.0, _request(0, state=RequestState.DECODING))
        feed.push(1.0, _request(1, state=RequestState.DECODING))
        feed.push(1.0, _request(2, state=RequestState.DECODING))
        assert feed.peek_arrival() == 1.0
        assert [feed.take(5.0).request_id for _ in range(3)] == [1, 2, 0]

    def test_request_source_protocol(self):
        feed = TransferFeed()
        assert feed.peek() is None
        assert feed.peek_arrival() == float("inf")
        assert not feed.has_request_at(10.0)
        request = _request(7, state=RequestState.DECODING)
        feed.push(3.0, request)
        assert feed.peek() is request
        assert not feed.has_request_at(2.9)
        assert feed.has_request_at(3.0)
        assert feed.queued_tokens == request.total_seq_len
        assert len(feed) == 1
        with pytest.raises(SchedulingError):
            TransferFeed().take(0.0)

    def test_feeds_a_decode_only_engine(self):
        # A transfer-fed engine runs decoding-only stages: the split decode
        # partition's whole existence.
        feed = TransferFeed()
        for rid in range(3):
            feed.push(0.0, _request(rid, lout=4, state=RequestState.DECODING))
        engine = _engine(source=feed)
        report = engine.run(SimulationLimits(max_stages=20, warmup_stages=0))
        assert report.requests_completed == 3
        assert report.decoding_only_stage_ratio == 1.0


class TestStageEvents:
    def test_observer_sees_admissions_and_completions(self):
        engine = _engine()
        events = []
        engine.observers.append(events.append)
        engine.run(SimulationLimits(max_stages=12, warmup_stages=0))
        assert events, "no stage events emitted"
        admitted = [rid for event in events for rid in event.admitted]
        finished = [rid for event in events for rid in event.finished]
        assert admitted and finished
        assert set(finished) <= set(admitted)
        assert all(event.latency_s > 0 for event in events)
        # Clock monotone across events.
        times = [event.now_s for event in events]
        assert times == sorted(times)

    def test_handoff_releases_and_forwards(self):
        inbox = QueueSource()
        inbox.push(_request(0, lin=16, lout=4))
        handed = []
        engine = _engine(source=inbox, handoff=lambda request, now: handed.append((request, now)))
        limits = SimulationLimits(max_stages=4, warmup_stages=0)
        assert engine.step(limits)
        assert len(handed) == 1
        request, when = handed[0]
        assert request.request_id == 0
        assert request.state is RequestState.DECODING
        assert when == engine.now_s
        assert engine.scheduler.running == []  # released from the batch
        assert engine.scheduler.committed_tokens == 0
        assert engine.handed_off_ids == [0]

    def test_single_token_output_finishes_instead_of_handing_off(self):
        inbox = QueueSource()
        inbox.push(_request(0, lin=16, lout=1))
        handed = []
        engine = _engine(source=inbox, handoff=lambda request, now: handed.append(request))
        engine.step(SimulationLimits(max_stages=4, warmup_stages=0))
        assert handed == []
        assert engine.finished_ids == [0]


class TestEngineBudget:
    def test_budget_exempt_engine_never_spends(self):
        engine = _engine(budget_exempt=True)
        limits = SimulationLimits(max_stages=1, warmup_stages=0)
        for _ in range(5):
            assert engine.step(limits)
        assert engine.stages == 5
        assert not engine.budget_spent(limits)

    def test_record_gate_overrides_warmup(self):
        gate_open = []
        engine = _engine(record_gate=lambda limits: bool(gate_open))
        limits = SimulationLimits(max_stages=10, warmup_stages=0)
        engine.step(limits)
        assert engine.metrics.stages_recorded == 0  # gate closed
        gate_open.append(True)
        engine.step(limits)
        assert engine.metrics.stages_recorded == 1


class TestDrainUntilComposesLikeDrain:
    """Slices of drain_until must reproduce one drain() call exactly —
    including across arrival gaps, where the engine advances (and books
    idle) to the same future-arrival instants drain() would."""

    def _gapped_source(self):
        # Three bursts separated by idle gaps larger than any slice.
        source = QueueSource()
        for rid, arrival in enumerate((0.0, 0.1, 2.5, 2.6, 7.3)):
            source.push(_request(rid, arrival=arrival, lin=64, lout=6))
        return source

    def test_slices_serve_work_beyond_idle_gaps(self):
        limits = SimulationLimits(max_stages=500, warmup_stages=0)
        whole = _engine(self._gapped_source())
        whole.drain(limits)
        sliced = _engine(self._gapped_source())
        t = 0.5
        for _ in range(200):
            sliced.drain_until(t, limits)
            t += 0.5
        sliced.drain(limits)  # terminal no-op if the slices finished
        assert sliced.finished_ids == whole.finished_ids == [0, 1, 2, 3, 4]
        assert sliced.stages == whole.stages
        assert sliced.metrics.elapsed_s == whole.metrics.elapsed_s  # idle splits agree
        assert sliced.now_s == whole.now_s

    def test_slice_leaves_arrivals_beyond_its_boundary(self):
        limits = SimulationLimits(max_stages=500, warmup_stages=0)
        engine = _engine(self._gapped_source())
        engine.drain_until(1.0, limits)  # first burst only
        assert engine.finished_ids == [0, 1]
        assert engine.now_s < 2.5  # did not advance into the idle gap


class TestSimulationLimitsHome:
    def test_simulator_reexports_limits(self):
        # The dataclass moved into the engine; the historical import path
        # must keep working.
        from repro.serving.simulator import SimulationLimits as FromSimulator

        assert FromSimulator is SimulationLimits
