"""Tests for the continuous-batching and static-batching schedulers."""

import pytest

from repro.errors import SchedulingError
from repro.serving.generator import RequestGenerator, WorkloadSpec
from repro.serving.request import RequestState
from repro.serving.scheduler import ContinuousBatchingScheduler, StaticBatchingScheduler


def make_scheduler(max_batch=4, lout=4, qps=None, capacity_tokens=None, seed=0):
    spec = WorkloadSpec(lin_mean=64, lout_mean=lout, qps=qps, min_len=1)
    return ContinuousBatchingScheduler(
        RequestGenerator(spec, seed=seed), max_batch, capacity_tokens
    )


class TestAdmission:
    def test_first_stage_is_all_prefill(self):
        scheduler = make_scheduler()
        stage = scheduler.build_stage()
        assert stage is not None
        assert stage.n_prefill == 4
        assert stage.n_decode == 0

    def test_batch_capped(self):
        scheduler = make_scheduler(max_batch=2)
        stage = scheduler.build_stage()
        assert stage.n_requests == 2

    def test_new_request_joins_after_completion(self):
        scheduler = make_scheduler(max_batch=2, lout=2)
        scheduler.build_stage()
        scheduler.complete_stage(0.01)  # prefill -> first token
        stage = scheduler.build_stage()  # decode-only stage
        assert stage.n_prefill == 0
        finished = scheduler.complete_stage(0.01)  # second token: lout=2 done
        assert len(finished) == 2
        stage = scheduler.build_stage()
        assert stage.n_prefill == 2  # replacements admitted immediately

    def test_capacity_blocks_admission(self):
        # Each request commits 64+4 tokens; capacity of 100 fits only one.
        scheduler = make_scheduler(max_batch=4, capacity_tokens=100)
        stage = scheduler.build_stage()
        assert stage.n_requests == 1

    def test_oversized_request_raises(self):
        scheduler = make_scheduler(capacity_tokens=10)
        with pytest.raises(SchedulingError):
            scheduler.build_stage()

    def test_open_loop_idle_returns_none(self):
        scheduler = make_scheduler(qps=0.0001)
        assert scheduler.build_stage() is None


class TestStageProgression:
    def test_mixed_then_decode_only(self):
        scheduler = make_scheduler(max_batch=2, lout=8)
        first = scheduler.build_stage()
        assert first.is_mixed
        scheduler.complete_stage(0.01)
        second = scheduler.build_stage()
        assert not second.is_mixed
        assert second.n_decode == 2

    def test_context_lengths_grow(self):
        scheduler = make_scheduler(max_batch=1, lout=8)
        scheduler.build_stage()
        scheduler.complete_stage(0.01)
        ctx_values = []
        for _ in range(3):
            stage = scheduler.build_stage()
            ctx_values.append(int(stage.decode_context_lengths[0]))
            scheduler.complete_stage(0.01)
        assert ctx_values == [64, 65, 66]

    def test_clock_advances_by_latency(self):
        scheduler = make_scheduler()
        scheduler.build_stage()
        scheduler.complete_stage(0.25)
        assert scheduler.now_s == pytest.approx(0.25)

    def test_complete_without_stage_raises(self):
        with pytest.raises(SchedulingError):
            make_scheduler().complete_stage(0.01)

    def test_kv_released_on_completion(self):
        scheduler = make_scheduler(max_batch=1, lout=2, capacity_tokens=70)
        scheduler.build_stage()
        scheduler.complete_stage(0.01)
        scheduler.build_stage()
        scheduler.complete_stage(0.01)  # finished: 66 tokens released
        assert scheduler._committed_tokens == 0

    def test_admission_resumes_after_completion_frees_tokens(self):
        # Capacity fits one 66-token request; the second is blocked until
        # the first finishes, then admission resumes with the same request.
        scheduler = make_scheduler(max_batch=4, lout=2, capacity_tokens=100)
        blocked = scheduler.source.peek()
        stage = scheduler.build_stage()
        assert stage.n_requests == 1
        scheduler.complete_stage(0.01)
        blocked = scheduler.source.peek()  # still pending, lengths fixed
        stage = scheduler.build_stage()
        assert stage.n_requests == 1  # decode continues, still no room
        scheduler.complete_stage(0.01)  # first request finishes, KV freed
        stage = scheduler.build_stage()
        assert stage.n_prefill == 1
        assert blocked in scheduler.running


class TestPublicPeek:
    def test_peek_returns_pending_request(self):
        spec = WorkloadSpec(lin_mean=64, lout_mean=4, min_len=1)
        generator = RequestGenerator(spec, seed=0)
        peeked = generator.peek()
        assert peeked is not None
        assert peeked.total_seq_len == peeked.input_len + peeked.output_len
        # Peeking fixes the sample: take() returns the same object.
        assert generator.take(0.0) is peeked

    def test_peek_is_idempotent(self):
        spec = WorkloadSpec(lin_mean=64, lout_mean=4, lin_cv=0.5, min_len=1)
        generator = RequestGenerator(spec, seed=0)
        assert generator.peek() is generator.peek()

    def test_admission_uses_peeked_lengths(self):
        # The scheduler sizes its capacity check off peek() — no access to
        # the generator's private _pending.
        scheduler = make_scheduler(max_batch=4, capacity_tokens=100)
        candidate = scheduler.source.peek()
        scheduler.build_stage()
        assert scheduler._committed_tokens == candidate.total_seq_len


class TestWarmStart:
    def test_staggered_progress(self):
        scheduler = make_scheduler(max_batch=8, lout=64)
        synthetic = scheduler.warm_start(8)
        progress = sorted(r.tokens_generated for r in synthetic)
        assert len(set(progress)) > 4  # staggered, not lock-stepped
        assert all(r.state is RequestState.DECODING for r in synthetic)

    def test_warm_start_fills_batch(self):
        scheduler = make_scheduler(max_batch=4, lout=16)
        scheduler.warm_start(4)
        stage = scheduler.build_stage()
        assert stage.n_decode == 4
        assert stage.n_prefill == 0

    def test_warm_start_on_running_system_raises(self):
        scheduler = make_scheduler()
        scheduler.build_stage()
        with pytest.raises(SchedulingError):
            scheduler.warm_start(2)


class TestStaticBatching:
    def test_cohort_blocks_until_all_finish(self):
        spec = WorkloadSpec(lin_mean=64, lout_mean=8, lout_cv=0.5)
        scheduler = StaticBatchingScheduler(RequestGenerator(spec, seed=3), max_batch=4)
        stage = scheduler.build_stage()
        assert stage.n_prefill == 4
        louts = sorted(r.output_len for r in scheduler.running)
        # Run until the longest request finishes; no admissions in between.
        stages = 0
        while any(r.state is not RequestState.FINISHED for r in scheduler.running):
            scheduler.complete_stage(0.01)
            stages += 1
            active = [r for r in scheduler.running if r.state is not RequestState.FINISHED]
            if active:
                assert scheduler.build_stage().n_prefill == 0
        assert stages == louts[-1]

    def test_next_cohort_after_drain(self):
        spec = WorkloadSpec(lin_mean=64, lout_mean=2, min_len=1)
        scheduler = StaticBatchingScheduler(RequestGenerator(spec, seed=0), max_batch=2)
        scheduler.build_stage()
        scheduler.complete_stage(0.01)
        scheduler.complete_stage(0.01)
        stage = scheduler.build_stage()
        assert stage.n_prefill == 2
