"""Sharded-replica tier: TP x EP fleets, device budgets, shared experts.

Run with ``pytest -m sharded`` (see TESTING.md).  The anchor test is the
equivalence proof: a ``ShardedReplicaSpec(tp=1, ep=1)`` replica must
reproduce a one-device monolithic replica *byte-exactly* — sharding is a
deployment axis, never a pricing change at degree one.
"""

from dataclasses import replace

import pytest

from repro.core.system import duplex_system, sharded_system
from repro.errors import ConfigError
from repro.models.config import ModelConfig, mixtral
from repro.parallel.topology import ClusterTopology
from repro.serving.cluster import (
    ClusterSimulator,
    MonolithicReplicaSpec,
    ShardedReplicaSpec,
    SplitReplicaSpec,
    replica_spec_devices,
)
from repro.serving.generator import WorkloadSpec
from repro.serving.simulator import SimulationLimits

pytestmark = pytest.mark.sharded

MODEL = mixtral()
LIMITS = SimulationLimits(max_stages=200, warmup_stages=10)


def tiny_moe() -> ModelConfig:
    """A MoE model small enough to serve from a single 80 GB device."""
    return ModelConfig(
        name="tiny-moe",
        n_layers=4,
        hidden=1024,
        intermediate=2048,
        n_heads=8,
        group_degree=2,
        n_experts=4,
        top_k=2,
        moe_layer_interval=1,
    )


def _workload(qps: float = 30.0) -> WorkloadSpec:
    return WorkloadSpec(lin_mean=512, lout_mean=32, lin_cv=0.5, lout_cv=0.5, qps=qps)


class TestShardedSystemFactory:
    def test_topology_is_tp_by_ep(self):
        system = sharded_system(MODEL, tp=4, ep=2)
        assert system.topology.n_nodes == 2
        assert system.topology.devices_per_node == 4
        assert system.name == "Duplex+PE-TP4xEP2"

    def test_expert_tensor_parallel_variant(self):
        system = sharded_system(MODEL, tp=4, ep=2, expert_tensor_parallel=True)
        assert system.name == "Duplex+PE+ET-TP4xEP2"

    def test_rejects_degenerate_degrees(self):
        with pytest.raises(ConfigError):
            sharded_system(MODEL, tp=0, ep=1)
        with pytest.raises(ConfigError):
            sharded_system(MODEL, tp=1, ep=0)

    def test_rejects_oversized_node(self):
        with pytest.raises(ConfigError):
            sharded_system(MODEL, tp=9, ep=1)


class TestDeviceAccounting:
    def test_sharded_spec_spans_tp_times_ep(self):
        assert ShardedReplicaSpec(tp=4, ep=2).n_devices == 8
        assert replica_spec_devices(ShardedReplicaSpec(tp=2, ep=3), None, MODEL) == 6

    def test_monolithic_spec_uses_its_system_topology(self):
        system = duplex_system(MODEL, co_processing=True)
        assert replica_spec_devices(MonolithicReplicaSpec(), system, MODEL) == 4
        override = duplex_system(MODEL, co_processing=True, topology=ClusterTopology(2, 8))
        assert replica_spec_devices(MonolithicReplicaSpec(system=override), system, MODEL) == 16

    def test_split_spec_counts_both_partitions(self):
        # Mixtral's default node of four splits 2 + 2.
        assert replica_spec_devices(SplitReplicaSpec(), None, MODEL) == 4

    def test_fixed_fleet_device_seconds(self):
        system = duplex_system(MODEL, co_processing=True)
        sim = ClusterSimulator(
            system,
            MODEL,
            _workload(qps=40.0),
            replicas=[ShardedReplicaSpec(tp=4, ep=2), ShardedReplicaSpec(tp=8, ep=1)],
            max_batch=16,
            seed=1,
            max_requests=60,
        )
        report = sim.run(SimulationLimits(max_stages=300, warmup_stages=20))
        assert tuple(h.spec.kind for h in sim.handles) == ("sharded", "sharded")
        # Both replicas span eight devices and live for the whole run.
        assert report.device_seconds == pytest.approx(8 * report.replica_seconds)
        assert report.device_seconds > 0


class TestDegreeOneEquivalence:
    """TP=1 x EP=1 sharding must be pricing-invisible."""

    def test_matches_monolithic_byte_exact(self):
        model = tiny_moe()
        one_device = duplex_system(model, co_processing=True, topology=ClusterTopology(1, 1))

        def run(spec):
            sim = ClusterSimulator(
                one_device,
                model,
                _workload(),
                replicas=[spec],
                max_batch=8,
                seed=3,
                max_requests=80,
            )
            return sim.run(LIMITS)

        sharded = run(ShardedReplicaSpec(tp=1, ep=1))
        monolithic = run(MonolithicReplicaSpec(system=one_device))
        # Everything except the replica label must agree exactly.
        assert sharded.fleet == monolithic.fleet
        assert sharded.requests_routed == monolithic.requests_routed
        assert sharded.replica_seconds == monolithic.replica_seconds
        assert sharded.device_seconds == monolithic.device_seconds
        assert list(sharded.replicas) == list(monolithic.replicas)

    def test_wider_tp_prefills_faster(self):
        # The whole point of sharding wide: more devices per replica cut
        # per-stage latency, so median T2FT drops with the TP degree.
        def run(tp):
            sim = ClusterSimulator(
                duplex_system(MODEL, co_processing=True),
                MODEL,
                _workload(qps=10.0),
                replicas=[ShardedReplicaSpec(tp=tp, ep=1)],
                max_batch=8,
                seed=5,
                max_requests=40,
            )
            return sim.run(LIMITS)

        assert run(8).fleet.t2ft_p50_s < run(2).fleet.t2ft_p50_s


class TestSharedExpertPricing:
    """DeepSeekMoE shared experts: priced, conserved, and golden-safe."""

    def test_zero_shared_experts_price_identically(self):
        # num_shared_experts=0 must not perturb a single bit of pricing
        # (this is what keeps every golden snapshot byte-identical).
        from repro.serving.simulator import ServingSimulator

        base = mixtral()
        explicit = replace(mixtral(), num_shared_experts=0)
        reports = [
            ServingSimulator(
                duplex_system(m, co_processing=True), m, _workload(), max_batch=8, seed=2
            ).run(LIMITS)
            for m in (base, explicit)
        ]
        assert reports[0] == reports[1]

    def test_shared_experts_cost_time_and_energy(self):
        from repro.serving.simulator import ServingSimulator

        def run(n_shared):
            model = replace(mixtral(), num_shared_experts=n_shared)
            sim = ServingSimulator(
                duplex_system(model, co_processing=True), model, _workload(), max_batch=8, seed=2
            )
            return sim.run(LIMITS)

        base, shared = run(0), run(2)
        assert shared.elapsed_s > base.elapsed_s
        assert shared.energy_per_token_j > base.energy_per_token_j

    @pytest.mark.parametrize("n_shared", [1, 2])
    def test_columnar_matches_scalar_with_shared_experts(self, n_shared):
        from repro.serving.simulator import ServingSimulator

        model = replace(mixtral(), num_shared_experts=n_shared)
        system = duplex_system(model, co_processing=True)

        def run(columnar):
            sim = ServingSimulator(
                system, model, _workload(qps=40.0), max_batch=16, seed=7, columnar=columnar
            )
            return sim.run(SimulationLimits(max_stages=300, warmup_stages=20))

        assert run(True) == run(False)


class TestAutoscalerDeviceBudget:
    def test_max_devices_clamps_fleet_width(self):
        from repro.serving.autoscaler import ElasticFleetSimulator, StaticReplicaPolicy

        sim = ElasticFleetSimulator(
            duplex_system(MODEL, co_processing=True),
            MODEL,
            _workload(qps=20.0),
            policy=StaticReplicaPolicy(1),
            min_replicas=1,
            max_replicas=8,
            max_devices=16,
            replica_template=ShardedReplicaSpec(tp=4, ep=1),
            max_batch=8,
            seed=0,
        )
        assert sim.devices_per_replica == 4
        assert sim.max_replicas == 4  # 16 devices / 4 per replica

    def test_max_devices_below_min_replicas_rejected(self):
        from repro.serving.autoscaler import ElasticFleetSimulator, StaticReplicaPolicy

        with pytest.raises(ConfigError):
            ElasticFleetSimulator(
                duplex_system(MODEL, co_processing=True),
                MODEL,
                _workload(qps=20.0),
                policy=StaticReplicaPolicy(2),
                min_replicas=2,
                max_replicas=8,
                max_devices=7,
                replica_template=ShardedReplicaSpec(tp=4, ep=1),
                max_batch=8,
                seed=0,
            )


class TestShardingExperiment:
    def test_fleet_grid_spends_the_budget(self):
        from repro.experiments import sharding

        system = duplex_system(MODEL, co_processing=True)
        for key in sharding.DEFAULT_FLEETS:
            specs = sharding.build_fleet(key)
            spent = sum(replica_spec_devices(s, system, MODEL) for s in specs)
            assert spent == sharding.DEVICE_BUDGET

    def test_unknown_fleet_rejected(self):
        from repro.experiments import sharding

        with pytest.raises(ConfigError):
            sharding.build_fleet("3xTP3")

    def test_single_point_runs(self):
        from repro.experiments import sharding

        rows = sharding.run(
            fleets=("1xTP8",),
            scenarios=("bursty-chat",),
            max_requests=20,
            limits=SimulationLimits(max_stages=20_000, warmup_stages=0),
            workers=1,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.devices == 8 and row.n_replicas == 1
        assert row.requests_completed == 20
        assert row.t2ft_p99_s > 0 and row.all_to_all_s > 0
        text = sharding.format_rows(rows)
        assert "1xTP8" in text and "8-device budget" in text
