"""Tests for the request lifecycle."""

import pytest

from repro.errors import ConfigError, SchedulingError
from repro.serving.request import Request, RequestState


def make_request(input_len=100, output_len=10, arrival=0.0):
    return Request(request_id=0, arrival_time_s=arrival, input_len=input_len, output_len=output_len)


class TestLifecycle:
    def test_full_lifecycle(self):
        request = make_request(output_len=3, arrival=1.0)
        request.start_prefill()
        request.finish_prefill(now_s=2.0)
        assert request.state is RequestState.DECODING
        assert request.tokens_generated == 1
        assert request.context_len == 100
        request.advance_decode(now_s=2.5)
        request.advance_decode(now_s=3.0)
        assert request.state is RequestState.FINISHED
        assert request.t2ft_s == pytest.approx(1.0)
        assert request.e2e_s == pytest.approx(2.0)

    def test_context_grows_per_decode(self):
        request = make_request(output_len=5)
        request.start_prefill()
        request.finish_prefill(0.1)
        request.advance_decode(0.2)
        assert request.context_len == 101

    def test_single_token_output_finishes_at_prefill(self):
        request = make_request(output_len=1)
        request.start_prefill()
        request.finish_prefill(0.5)
        assert request.state is RequestState.FINISHED

    def test_total_seq_len(self):
        assert make_request(input_len=100, output_len=10).total_seq_len == 110


class TestInvalidTransitions:
    def test_cannot_decode_before_prefill(self):
        with pytest.raises(SchedulingError):
            make_request().advance_decode(1.0)

    def test_cannot_prefill_twice(self):
        request = make_request()
        request.start_prefill()
        with pytest.raises(SchedulingError):
            request.start_prefill()

    def test_t2ft_requires_first_token(self):
        with pytest.raises(SchedulingError):
            _ = make_request().t2ft_s

    def test_e2e_requires_completion(self):
        request = make_request()
        request.start_prefill()
        request.finish_prefill(0.5)
        with pytest.raises(SchedulingError):
            _ = request.e2e_s


class TestValidation:
    def test_rejects_zero_lengths(self):
        with pytest.raises(ConfigError):
            make_request(input_len=0)
        with pytest.raises(ConfigError):
            make_request(output_len=0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ConfigError):
            make_request(arrival=-1.0)
