"""Tests for synthetic request generation."""

import pytest

from repro.errors import ConfigError
from repro.serving.generator import RequestGenerator, WorkloadSpec


class TestClosedLoop:
    def test_always_has_a_request(self):
        gen = RequestGenerator(WorkloadSpec(lin_mean=512, lout_mean=512))
        assert gen.has_request_at(0.0)
        assert gen.has_request_at(1e9)

    def test_arrival_matches_take_time(self):
        gen = RequestGenerator(WorkloadSpec(lin_mean=512, lout_mean=512))
        request = gen.take(42.0)
        assert request.arrival_time_s == 42.0

    def test_fixed_lengths_with_zero_cv(self):
        gen = RequestGenerator(WorkloadSpec(lin_mean=512, lout_mean=256))
        for _ in range(5):
            request = gen.take(0.0)
            assert (request.input_len, request.output_len) == (512, 256)

    def test_ids_unique_and_increasing(self):
        gen = RequestGenerator(WorkloadSpec(lin_mean=8, lout_mean=8))
        ids = [gen.take(0.0).request_id for _ in range(10)]
        assert ids == sorted(set(ids))


class TestPoissonArrivals:
    def test_arrivals_increase(self):
        gen = RequestGenerator(WorkloadSpec(lin_mean=512, lout_mean=512, qps=10.0), seed=3)
        times = []
        for _ in range(20):
            times.append(gen.peek_arrival())
            gen.take(times[-1])
        assert times == sorted(times)

    def test_mean_rate_close_to_qps(self):
        qps = 8.0
        gen = RequestGenerator(WorkloadSpec(lin_mean=16, lout_mean=16, qps=qps), seed=7)
        last = 0.0
        n = 2000
        for _ in range(n):
            last = gen.peek_arrival()
            gen.take(last)
        assert n / last == pytest.approx(qps, rel=0.1)

    def test_not_ready_before_arrival(self):
        gen = RequestGenerator(WorkloadSpec(lin_mean=16, lout_mean=16, qps=0.001), seed=0)
        assert not gen.has_request_at(0.0)


class TestGaussianLengths:
    def test_lengths_vary_with_cv(self):
        spec = WorkloadSpec(lin_mean=1000, lout_mean=1000, lin_cv=0.3, lout_cv=0.3)
        gen = RequestGenerator(spec, seed=5)
        lengths = {gen.take(0.0).input_len for _ in range(20)}
        assert len(lengths) > 5

    def test_min_len_floor(self):
        spec = WorkloadSpec(lin_mean=4, lout_mean=4, lin_cv=2.0, lout_cv=2.0, min_len=4)
        gen = RequestGenerator(spec, seed=11)
        for _ in range(50):
            request = gen.take(0.0)
            assert request.input_len >= 4
            assert request.output_len >= 4

    def test_sample_mean_near_spec_mean(self):
        spec = WorkloadSpec(lin_mean=2048, lout_mean=512, lin_cv=0.2)
        gen = RequestGenerator(spec, seed=13)
        mean = sum(gen.take(0.0).input_len for _ in range(500)) / 500
        assert mean == pytest.approx(2048, rel=0.05)

    def test_seed_reproducibility(self):
        spec = WorkloadSpec(lin_mean=1000, lout_mean=1000, lin_cv=0.5)
        a = [RequestGenerator(spec, seed=9).take(0.0).input_len for _ in range(1)]
        b = [RequestGenerator(spec, seed=9).take(0.0).input_len for _ in range(1)]
        assert a == b


class TestValidation:
    def test_rejects_zero_mean(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(lin_mean=0, lout_mean=10)

    def test_rejects_negative_cv(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(lin_mean=10, lout_mean=10, lin_cv=-0.1)

    def test_rejects_zero_qps(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(lin_mean=10, lout_mean=10, qps=0.0)
