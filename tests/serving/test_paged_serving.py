"""Live KV paging in the serving engine (evict / resume under pressure).

Two layers:

* **mechanism tests** drive a paged engine with a stub executor and
  hand-fed requests, so preemption order, resume timing, StageEvent
  attribution, and accounting invariants are checked deterministically;
* an **acceptance test** runs the real Mixtral Duplex executor on an
  over-capacity long-context workload: the paged engine must complete
  every request (zero sheds) where the classic capacity-capped baseline
  sheds, with resident KV never exceeding capacity at any stage boundary
  — under both MIGRATE and RECOMPUTE.
"""

from dataclasses import dataclass, field

import pytest

from repro.core.system import duplex_system
from repro.errors import ConfigError
from repro.models.config import mixtral
from repro.serving.engine import KvPagingCoordinator, ServingEngine, SimulationLimits
from repro.serving.generator import QueueSource
from repro.serving.paging import EvictionPolicy, HostLink, PagedKvManager, PagingConfig
from repro.serving.policy import SloAwarePolicy
from repro.serving.request import Request
from repro.serving.scenarios import long_context
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.simulator import ServingSimulator

pytestmark = pytest.mark.paging


# ----------------------------------------------------------------------
# stub pricing (mechanism tests need exact control, not real latencies)
# ----------------------------------------------------------------------
@dataclass
class _StubResult:
    latency_s: float
    is_mixed: bool
    dram_energy_by_category: dict = field(default_factory=dict)
    compute_energy_by_category: dict = field(default_factory=dict)
    comm_energy_j: float = 0.0


class _StubExecutor:
    """Fixed-latency pricing; records the workloads it priced."""

    def __init__(self, latency_s: float = 0.01) -> None:
        self.latency_s = latency_s
        self.replay_prefills: list[int] = []

    def run_stage(self, workload) -> _StubResult:
        if workload.n_decode == 0 and len(workload.prefill_lengths) == 1:
            self.replay_prefills.append(workload.prefill_lengths[0])
        return _StubResult(latency_s=self.latency_s, is_mixed=workload.is_mixed)


def _request(rid: int, arrival: float, lin: int = 30, lout: int = 10) -> Request:
    return Request(request_id=rid, arrival_time_s=arrival, input_len=lin, output_len=lout)


def make_paged_engine(
    capacity: int = 100,
    max_batch: int = 8,
    policy: EvictionPolicy = EvictionPolicy.MIGRATE,
    sched_policy=None,
    host_capacity: int | None = None,
):
    source = QueueSource()
    executor = _StubExecutor()
    manager = PagedKvManager(
        capacity_tokens=capacity,
        kv_bytes_per_token=1.0,
        policy=policy,
        link=HostLink(bandwidth=1e6, latency_s=0.001),
        host_capacity_tokens=host_capacity,
    )
    coordinator = KvPagingCoordinator(manager, executor)
    scheduler = ContinuousBatchingScheduler(
        source, max_batch, capacity, policy=sched_policy, paging=coordinator
    )
    engine = ServingEngine(scheduler, executor, label="paged-test")
    return engine, scheduler, coordinator, source


LIMITS = SimulationLimits(max_stages=500, warmup_stages=0)


# ----------------------------------------------------------------------
# mechanism
# ----------------------------------------------------------------------
class TestSchedulerValidation:
    def test_paging_requires_finite_capacity(self):
        manager = PagedKvManager(capacity_tokens=100, kv_bytes_per_token=1.0)
        coordinator = KvPagingCoordinator(manager, _StubExecutor())
        with pytest.raises(ConfigError):
            ContinuousBatchingScheduler(QueueSource(), 4, None, paging=coordinator)

    def test_paging_capacity_must_match_manager(self):
        manager = PagedKvManager(capacity_tokens=100, kv_bytes_per_token=1.0)
        coordinator = KvPagingCoordinator(manager, _StubExecutor())
        with pytest.raises(ConfigError):
            ContinuousBatchingScheduler(QueueSource(), 4, 200, paging=coordinator)


class TestPreemptionMechanics:
    def test_overflow_arrival_preempts_youngest_and_everyone_finishes(self):
        engine, scheduler, coordinator, source = make_paged_engine(capacity=100)
        source.push(_request(0, 0.0, lin=30, lout=10))  # 40 tokens
        source.push(_request(1, 0.0, lin=30, lout=10))  # 40 tokens
        source.push(_request(2, 0.05, lin=30, lout=10))  # 40 tokens: overflow
        events = []
        engine.observers.append(events.append)
        engine.run(LIMITS)
        preempted = [rid for event in events for rid in event.preempted]
        resumed = [rid for event in events for rid in event.resumed]
        # Request 1 is the youngest resident when 2 arrives (FCFS default
        # breaks the arrival tie by id), parks once, and comes back.
        assert preempted == [1]
        assert resumed == [1]
        assert sorted(engine.finished_ids) == [0, 1, 2]
        # No admission was ever recorded twice.
        assert sorted(scheduler.admitted_log) == [0, 1, 2]

    def test_resident_never_exceeds_capacity_at_any_boundary(self):
        engine, scheduler, coordinator, source = make_paged_engine(
            capacity=100, max_batch=6
        )
        for rid in range(6):  # 240 demanded tokens vs 100 of capacity
            source.push(_request(rid, 0.02 * rid, lin=30, lout=10))
        events = []
        engine.observers.append(events.append)
        engine.run(LIMITS)
        assert sorted(engine.finished_ids) == list(range(6))
        manager = coordinator.manager
        for event in events:
            assert event.committed_tokens <= event.capacity_tokens
        assert manager.resident_tokens == 0
        assert manager.evicted_tokens == 0
        assert manager.stats.evictions == manager.stats.resumes

    def test_conservation_audited_per_stage(self):
        # resident + evicted must equal the reservations of every admitted,
        # unfinished request at each stage boundary.
        engine, scheduler, coordinator, source = make_paged_engine(
            capacity=120, max_batch=5
        )
        requests = [_request(rid, 0.02 * rid, lin=40, lout=8) for rid in range(5)]
        for request in requests:
            source.push(request)
        live_tokens = {r.request_id: r.total_seq_len for r in requests}
        manager = coordinator.manager

        def audit(event):
            for rid in event.finished:
                live_tokens.pop(rid)
            admitted = sum(
                live_tokens[rid]
                for rid in scheduler.admitted_log
                if rid in live_tokens
            )
            assert manager.resident_tokens + manager.evicted_tokens == admitted

        engine.observers.append(audit)
        engine.run(LIMITS)
        assert not live_tokens or set(live_tokens) == set(
            r.request_id for r in scheduler.waiting
        )

    def test_migrate_round_trip_delays_rejoin_by_link_time(self):
        engine, scheduler, coordinator, source = make_paged_engine(capacity=100)
        source.push(_request(0, 0.0))
        source.push(_request(1, 0.0))
        source.push(_request(2, 0.05))
        engine.run(LIMITS)
        stats = coordinator.manager.stats
        assert stats.evictions == 1 and stats.resumes == 1
        # Out and back over the host link, tokens conserved.
        assert stats.migrated_out_bytes == stats.migrated_in_bytes > 0
        assert stats.host_link_time_s > 0
        assert stats.recomputed_tokens == 0

    def test_concurrent_migrations_serialize_on_the_host_link(self):
        # Two victims evicted at the same boundary share one outbound
        # link: the second transfer starts when the first finishes, and
        # the resumes likewise queue on the inbound direction — N
        # migrations cost N transfer times of wall clock, not one.
        manager = PagedKvManager(
            capacity_tokens=1000,
            kv_bytes_per_token=1.0,
            link=HostLink(bandwidth=1000.0, latency_s=0.0),  # 100 tokens = 0.1s
        )
        coordinator = KvPagingCoordinator(manager, _StubExecutor())
        first = _request(0, 0.0, lin=90, lout=10)
        second = _request(1, 0.0, lin=90, lout=10)
        for request in (first, second):
            request.start_prefill()
            request.finish_prefill(0.0)  # context = 90 + first token
            coordinator.on_admit(request)
        coordinator.evict(first, now_s=0.0)  # out: 0.00 -> 0.09
        coordinator.evict(second, now_s=0.0)  # out: 0.09 -> 0.18 (queued)
        coordinator.resume_next(now_s=0.0)  # in: 0.09 -> 0.18
        coordinator.resume_next(now_s=0.0)  # in: max(0.18, 0.18) -> 0.27
        assert coordinator.resume_feed.take(1.0) is first
        assert coordinator.next_ready_s() == pytest.approx(0.27)

    def test_recompute_resume_replays_prefill_through_executor(self):
        engine, scheduler, coordinator, source = make_paged_engine(
            capacity=100, policy=EvictionPolicy.RECOMPUTE
        )
        source.push(_request(0, 0.0))
        source.push(_request(1, 0.0))
        source.push(_request(2, 0.05))
        engine.run(LIMITS)
        stats = coordinator.manager.stats
        assert stats.recomputed_tokens > 0
        assert stats.migrated_out_bytes == 0.0
        assert stats.host_link_time_s == 0.0
        # The replay was priced by the same executor as every other stage.
        assert engine.executor.replay_prefills == [stats.recomputed_tokens]
        assert sorted(engine.finished_ids) == [0, 1, 2]

    def test_full_host_degrades_to_queueing(self):
        engine, scheduler, coordinator, source = make_paged_engine(
            capacity=100, host_capacity=10
        )
        source.push(_request(0, 0.0))
        source.push(_request(1, 0.0))
        source.push(_request(2, 0.05))
        engine.run(LIMITS)
        # No reservation fits the 10-token host: nothing is ever evicted,
        # request 2 waits for free KV exactly as without paging.
        assert coordinator.manager.stats.evictions == 0
        assert sorted(engine.finished_ids) == [0, 1, 2]

    def test_paging_disabled_has_no_paging_events(self):
        source = QueueSource()
        executor = _StubExecutor()
        scheduler = ContinuousBatchingScheduler(source, 4, 100)
        engine = ServingEngine(scheduler, executor, label="plain")
        source.push(_request(0, 0.0))
        source.push(_request(1, 0.0))
        source.push(_request(2, 0.05))
        events = []
        engine.observers.append(events.append)
        engine.run(LIMITS)
        assert all(event.preempted == () and event.resumed == () for event in events)
        assert scheduler.next_paging_ready_s == float("inf")
        assert scheduler.paged_count == 0

    def test_slo_policy_protects_racing_prefills_from_preemption(self):
        # Two residents: one decoding (preemptible), one mid-prefill within
        # the preemption guard of its deadline (protected).  The overflow
        # arrival must evict the decoder even though the prefill is younger.
        engine, scheduler, coordinator, source = make_paged_engine(
            capacity=100,
            sched_policy=SloAwarePolicy(
                t2ft_slo_s=0.5, shed_expired=False, preemption_guard_s=10.0
            ),
        )
        source.push(_request(0, 0.0))  # will be decoding
        events = []
        engine.observers.append(events.append)
        engine.step(LIMITS)  # request 0 prefills -> decoding
        source.push(_request(1, scheduler.now_s, lin=30, lout=10))
        source.push(_request(2, scheduler.now_s, lin=30, lout=10))
        engine.run(LIMITS)
        preempted = [rid for event in events for rid in event.preempted]
        assert 0 in preempted  # the decoder parked
        assert 1 not in preempted  # the racing prefill never did
        assert sorted(engine.finished_ids) == [0, 1, 2]


class TestPagingReport:
    def test_report_carries_paging_summary(self):
        engine, scheduler, coordinator, source = make_paged_engine(capacity=100)
        source.push(_request(0, 0.0))
        source.push(_request(1, 0.0))
        source.push(_request(2, 0.05))
        report = engine.run(LIMITS)
        assert report.paging["preemptions"] == 1.0
        assert report.paging["resumes"] == 1.0
        assert report.paging["migrated_out_tokens"] > 0
        assert report.paging["host_link_s"] > 0

    def test_quiet_run_reports_empty_paging(self):
        engine, scheduler, coordinator, source = make_paged_engine(capacity=1000)
        source.push(_request(0, 0.0))
        report = engine.run(LIMITS)
        assert report.paging == {}


# ----------------------------------------------------------------------
# acceptance: real executor, over-capacity long-context workload
# ----------------------------------------------------------------------
MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)
ACCEPT_LIMITS = SimulationLimits(max_stages=100_000, warmup_stages=0)


N_REQUESTS = 60


def _over_capacity_sim(paging: PagingConfig | None) -> ServingSimulator:
    # Sustained ~45k-token mean requests at 10 QPS hold ~40+ concurrent
    # residents against the node's ~1.78M-token capacity; any single
    # request still fits (max_factor clips the tail).  The capacity-capped
    # baseline queues arrivals past their 20s first-token deadline and
    # sheds them; the paged engine admits by evicting mid-decode victims.
    scenario = long_context(
        lin_median=32768, lout_median=512, sigma=0.8, max_factor=8.0, t2ft_slo_s=20.0
    ).at_qps(10.0)
    return ServingSimulator(
        SYSTEM,
        MODEL,
        scenario.source(seed=1, max_requests=N_REQUESTS),
        max_batch=96,
        seed=1,
        policy=SloAwarePolicy(t2ft_slo_s=20.0, shed_expired=True),
        paging=paging,
    )


class TestOverCapacityAcceptance:
    @pytest.fixture(scope="class")
    def baseline(self):
        sim = _over_capacity_sim(paging=None)
        report = sim.run(ACCEPT_LIMITS)
        return sim, report

    @pytest.mark.parametrize("policy", [EvictionPolicy.MIGRATE, EvictionPolicy.RECOMPUTE])
    def test_paged_engine_completes_what_the_baseline_sheds(self, baseline, policy):
        baseline_sim, baseline_report = baseline
        baseline_shed = len(baseline_sim.scheduler.rejected)
        assert baseline_shed > 0, "baseline must be over capacity for this test"

        sim = _over_capacity_sim(paging=PagingConfig(policy=policy))
        events = []
        sim.engine.observers.append(events.append)
        report = sim.run(ACCEPT_LIMITS)
        assert len(sim.scheduler.rejected) == 0
        assert report.requests_completed == N_REQUESTS
        assert report.paging["preemptions"] > 0
        # Invariant: resident KV within capacity at every stage boundary.
        capacity = sim.scheduler.capacity_tokens
        assert events
        for event in events:
            assert event.committed_tokens <= capacity
        manager = sim.paging.manager
        assert manager.resident_tokens == 0
        assert manager.evicted_tokens == 0
        if policy is EvictionPolicy.MIGRATE:
            assert report.paging["migrated_out_tokens"] > 0
            assert report.paging["host_link_s"] > 0
        else:
            assert report.paging["recomputed_tokens"] > 0
            assert report.paging["replay_s"] > 0
