"""Fault-tolerance tests (marked ``chaos``).

Four layers:

* unit tests — RNG stream derivation, stage-time profiles, config
  validation, crash sampling (trace precedence, device blast radius);
* the stream-isolation regression — an armed-but-quiescent
  :class:`FaultInjector` (empty schedule, or a crash trace beyond the
  simulated horizon) leaves every report field byte-identical to a run
  with no injector at all;
* recovery units — host-KV adoption and crash-harvest bookkeeping on the
  :class:`PagedKvManager`;
* the end-to-end acceptance scenario — a fixed seeded crash schedule
  against a two-replica fleet: the retry stack completes every retryable
  request (zero permanently lost), conserves generated tokens against
  the lost-work ledger, prices the outage window exactly, and beats the
  no-retry baseline, whose tail latency diverges once lost requests are
  counted as unbounded samples.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.system import duplex_system
from repro.errors import CapacityError, ConfigError, SchedulingError
from repro.experiments.chaos import _p99_with_lost
from repro.models.config import mixtral
from repro.serving.cluster import ClusterSimulator, ReplicaState
from repro.serving.faults import (
    FaultConfig,
    FaultInjector,
    RetryPolicy,
    StageTimeProfile,
    stream_seed,
)
from repro.serving.generator import WorkloadSpec
from repro.serving.metrics import MetricsCollector
from repro.serving.paging import PagedKvManager
from repro.serving.simulator import SimulationLimits
from repro.serving.trace import TraceRecord, TraceReplayGenerator

pytestmark = pytest.mark.chaos

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)


# ----------------------------------------------------------------------
# RNG stream derivation
# ----------------------------------------------------------------------
class TestStreamSeed:
    def test_none_passes_through(self):
        assert stream_seed(None, "faults") is None

    def test_reproducible(self):
        assert stream_seed(7, "faults") == stream_seed(7, "faults")

    def test_distinct_names_distinct_streams(self):
        names = ("faults", "workload", "router", "gating")
        seeds = {stream_seed(7, name) for name in names}
        assert len(seeds) == len(names)

    def test_distinct_seeds_distinct_streams(self):
        assert stream_seed(7, "faults") != stream_seed(8, "faults")

    def test_not_the_raw_seed(self):
        # The child stream must not alias the root stream.
        assert stream_seed(7, "faults") != 7


# ----------------------------------------------------------------------
# stage-time profiles
# ----------------------------------------------------------------------
class TestStageTimeProfile:
    def test_empty_profile_is_identity(self):
        profile = StageTimeProfile(())
        assert profile.scale_at(0.0) == 1.0
        assert profile.scale_at(1e9) == 1.0
        assert profile.next_change_s(0.0) == float("inf")

    def test_windows_scale_inside_only(self):
        profile = StageTimeProfile(((1.0, 2.0, 3.0), (5.0, 6.0, 2.0)))
        assert profile.scale_at(0.5) == 1.0
        assert profile.scale_at(1.0) == 3.0
        assert profile.scale_at(1.999) == 3.0
        assert profile.scale_at(2.0) == 1.0  # end-exclusive
        assert profile.scale_at(5.5) == 2.0
        assert profile.scale_at(10.0) == 1.0

    def test_next_change_is_start_outside_end_inside(self):
        profile = StageTimeProfile(((1.0, 2.0, 3.0),))
        assert profile.next_change_s(0.5) == 1.0
        assert profile.next_change_s(1.5) == 2.0
        assert profile.next_change_s(2.5) == float("inf")

    def test_cursor_survives_repeated_reads(self):
        profile = StageTimeProfile(((1.0, 2.0, 3.0), (5.0, 6.0, 2.0)))
        # Monotone reads (the engine clock never goes backwards).
        assert [profile.scale_at(t) for t in (0.0, 1.5, 1.5, 3.0, 5.0, 7.0)] == [
            1.0, 3.0, 3.0, 1.0, 2.0, 1.0,
        ]


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
class TestFaultConfigValidation:
    def test_rates_must_be_positive(self):
        with pytest.raises(ConfigError):
            FaultConfig(crash_mtbf_s=0.0)
        with pytest.raises(ConfigError):
            FaultConfig(device_mtbf_s=-1.0)
        with pytest.raises(ConfigError):
            FaultConfig(crash_mttr_s=0.0)

    def test_detection_latency_non_negative(self):
        with pytest.raises(ConfigError):
            FaultConfig(detection_latency_s=-0.1)
        FaultConfig(detection_latency_s=0.0)  # instant detection is legal

    def test_factors_are_slowdowns(self):
        with pytest.raises(ConfigError):
            FaultConfig(straggler_mtbf_s=10.0, straggler_factor=0.5, horizon_s=100.0)
        with pytest.raises(ConfigError):
            FaultConfig(link_mtbf_s=10.0, link_factor=0.9, horizon_s=100.0)

    def test_window_schedules_require_horizon(self):
        with pytest.raises(ConfigError, match="horizon"):
            FaultConfig(straggler_mtbf_s=10.0)
        with pytest.raises(ConfigError, match="horizon"):
            FaultConfig(link_mtbf_s=10.0)

    def test_crash_trace_entries_validated_and_normalized(self):
        with pytest.raises(ConfigError):
            FaultConfig(crash_times=((-1.0, 0),))
        with pytest.raises(ConfigError):
            FaultConfig(crash_times=((1.0, -2),))
        assert FaultConfig(crash_times=((1, 0),)).crash_times == ((1.0, 0),)


class TestRetryPolicyValidation:
    def test_bounds(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base_s=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(per_tenant_budget=-1)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=2.0, jitter_fraction=0.0)
        assert policy.delay_s(2) == pytest.approx(0.1)
        assert policy.delay_s(3) == pytest.approx(0.2)
        assert policy.delay_s(4) == pytest.approx(0.4)

    def test_jitter_stays_inside_fraction(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter_fraction=0.25)
        rng = np.random.default_rng(0)
        delays = [policy.delay_s(2, rng) for _ in range(200)]
        assert all(0.075 <= d <= 0.125 for d in delays)
        assert len(set(delays)) > 1  # the jitter actually draws


# ----------------------------------------------------------------------
# crash sampling
# ----------------------------------------------------------------------
class TestSampleCrash:
    def test_no_sources_schedules_nothing(self):
        injector = FaultInjector(FaultConfig(), seed=0)
        assert injector.sample_crash(0, 0.0) is None

    def test_trace_is_replayed_per_index(self):
        injector = FaultInjector(
            FaultConfig(crash_times=((4.0, 0), (9.0, 1))), seed=0
        )
        assert injector.sample_crash(0, 0.0) == (4.0, "replica")
        assert injector.sample_crash(1, 0.0) == (9.0, "replica")
        assert injector.sample_crash(2, 0.0) is None

    def test_trace_respects_activation_instant(self):
        # A crash scheduled before the replica existed never fires on it.
        injector = FaultInjector(FaultConfig(crash_times=((4.0, 0),)), seed=0)
        assert injector.sample_crash(0, 5.0) is None

    def test_trace_beats_a_later_mtbf_draw(self):
        injector = FaultInjector(
            FaultConfig(crash_mtbf_s=1e12, crash_times=((4.0, 0),)), seed=0
        )
        assert injector.sample_crash(0, 0.0) == (4.0, "replica")

    def test_horizon_bounds_sampled_crashes(self):
        injector = FaultInjector(FaultConfig(crash_mtbf_s=1e9, horizon_s=1.0), seed=0)
        assert injector.sample_crash(0, 0.0) is None

    def test_device_only_failures_are_device_caused(self):
        injector = FaultInjector(FaultConfig(device_mtbf_s=100.0), seed=0)
        sampled = injector.sample_crash(0, 0.0, n_devices=4)
        assert sampled is not None and sampled[1] == "device"

    def test_wider_replicas_fail_proportionally_sooner(self):
        # The device-failure rate scales with the device footprint: the
        # blast-radius asymmetry the chaos sweep quantifies.
        narrow = FaultInjector(FaultConfig(device_mtbf_s=1000.0), seed=3)
        wide = FaultInjector(FaultConfig(device_mtbf_s=1000.0), seed=3)
        mean_narrow = np.mean([narrow.sample_crash(0, 0.0, 1)[0] for _ in range(300)])
        mean_wide = np.mean([wide.sample_crash(0, 0.0, 8)[0] for _ in range(300)])
        assert mean_wide == pytest.approx(mean_narrow / 8.0)

    def test_unseeded_injector_binds_once(self):
        injector = FaultInjector(FaultConfig(crash_mtbf_s=10.0))
        injector.bind(5)
        injector.bind(99)  # no-op: already bound
        reference = FaultInjector(FaultConfig(crash_mtbf_s=10.0), seed=5)
        assert injector.sample_crash(0, 0.0) == reference.sample_crash(0, 0.0)


class TestWindowSchedules:
    def test_straggler_windows_cached_per_replica(self):
        injector = FaultInjector(
            FaultConfig(straggler_mtbf_s=20.0, straggler_duration_s=5.0,
                        straggler_factor=2.0, horizon_s=200.0),
            seed=0,
        )
        first = injector.straggler_windows(0)
        assert injector.straggler_windows(0) == first  # sampled once
        assert first, "a 200s horizon at 20s MTBF should sample windows"
        for start, end, factor in first:
            assert 0.0 <= start < 200.0
            assert end == pytest.approx(start + 5.0)
            assert factor == 2.0
        # Sorted and non-overlapping.
        for (_, prev_end, _), (start, _, _) in zip(first, first[1:], strict=False):
            assert start >= prev_end

    def test_link_windows_shared_with_per_replica_cursors(self):
        injector = FaultInjector(
            FaultConfig(link_mtbf_s=20.0, link_duration_s=10.0,
                        link_factor=4.0, horizon_s=200.0),
            seed=0,
        )
        assert injector.link_windows() == injector.link_windows()
        a, b = injector.link_profile(), injector.link_profile()
        assert a is not b  # independent cursors (replica clocks diverge)
        assert a.windows == b.windows  # over one shared schedule

    def test_disabled_schedules_sample_nothing(self):
        injector = FaultInjector(FaultConfig(), seed=0)
        assert injector.straggler_windows(0) == ()
        assert injector.straggler_profile(0) is None
        assert injector.link_windows() == ()
        assert injector.link_profile() is None


# ----------------------------------------------------------------------
# the stream-isolation regression (satellite of the failure model)
# ----------------------------------------------------------------------
QUIET_LIMITS = SimulationLimits(max_stages=300, warmup_stages=20)


def quiet_cluster(**kwargs):
    spec = WorkloadSpec(lin_mean=1024, lout_mean=128, lin_cv=0.5, lout_cv=0.5, qps=40.0)
    return ClusterSimulator(
        SYSTEM, MODEL, spec, n_replicas=2, max_batch=8, seed=3, max_requests=60, **kwargs
    )


def assert_reports_identical(a, b):
    for field in dataclasses.fields(a):
        assert getattr(a, field.name) == getattr(b, field.name), (
            f"field {field.name} diverges under an armed-but-quiescent injector"
        )


class TestQuiescentByteIdentity:
    """Arming an injector that injects nothing must not perturb the run."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return quiet_cluster().run(QUIET_LIMITS)

    def test_empty_schedule_is_byte_identical(self, baseline):
        armed = quiet_cluster(
            faults=FaultInjector(FaultConfig()), retry=RetryPolicy()
        ).run(QUIET_LIMITS)
        assert_reports_identical(baseline, armed)
        assert armed.fleet.faults == {}

    def test_beyond_horizon_trace_is_byte_identical(self, baseline):
        # The crash is armed (heap entry, capped advances) but never
        # fires inside the simulated work — still byte-identical.
        faults = FaultInjector(
            FaultConfig(crash_times=((1e9, 0),), crash_mttr_s=5.0)
        )
        armed = quiet_cluster(faults=faults, retry=RetryPolicy()).run(QUIET_LIMITS)
        assert_reports_identical(baseline, armed)
        assert armed.fleet.faults == {}


# ----------------------------------------------------------------------
# recovery units: host-KV adoption on the capacity manager
# ----------------------------------------------------------------------
class TestManagerCrashRecovery:
    def _manager(self, **kwargs):
        return PagedKvManager(capacity_tokens=1000, kv_bytes_per_token=2.0, **kwargs)

    def test_forget_drops_resident_and_evicted(self):
        manager = self._manager()
        manager.admit(1, 100)
        manager.admit(2, 200)
        manager.evict(2, 150)
        manager.forget(1)
        manager.forget(2)
        manager.forget(99)  # unknown ids tolerated: crash harvest, not bookkeeping
        assert manager.resident_tokens == 0
        assert manager.evicted_tokens == 0
        manager.admit(1, 100)  # no phantom-id collision after forget

    def test_adopt_registers_without_pricing_a_transfer(self):
        manager = self._manager()
        manager.adopt_evicted(5, 300)
        assert manager.evicted_tokens == 300
        assert manager.stats.migrated_in_bytes == 0.0  # the copy is already host-side
        outcome = manager.resume(5, 250)
        assert manager.resident_tokens == 300
        assert outcome.transfer_time_s > 0.0  # the inbound leg is priced normally

    def test_adopt_validates(self):
        manager = self._manager()
        with pytest.raises(ConfigError):
            manager.adopt_evicted(5, 0)
        manager.admit(1, 100)
        with pytest.raises(SchedulingError):
            manager.adopt_evicted(1, 100)  # already tracked here
        bounded = self._manager(host_capacity_tokens=200)
        with pytest.raises(CapacityError, match="adopted"):
            bounded.adopt_evicted(5, 300)


# ----------------------------------------------------------------------
# straggler windows stretch wall-clock, never energy
# ----------------------------------------------------------------------
STRAGGLER_LIMITS = SimulationLimits(max_stages=20_000, warmup_stages=0)


def straggler_trace():
    # Every request arrives at t=0: admission decisions then depend only
    # on stage boundaries, never on wall-clock, so a stage-time
    # multiplier must scale elapsed time exactly and leave the stage /
    # batch sequence (and with it the energy ledger) untouched.
    return TraceReplayGenerator(
        [TraceRecord(arrival_s=0.0, input_len=512, output_len=32) for _ in range(12)]
    )


def one_replica_cluster():
    return ClusterSimulator(
        SYSTEM, MODEL, straggler_trace(), n_replicas=1, max_batch=8, seed=1
    )


class TestStragglerProfile:
    @pytest.fixture(scope="class")
    def baseline(self):
        return one_replica_cluster().run(STRAGGLER_LIMITS)

    def test_slowdown_stretches_elapsed_not_energy(self, baseline):
        sim = one_replica_cluster()
        for engine in sim.handles[0].replica.engines:
            engine.fault_profile = StageTimeProfile(((0.0, 1e9, 2.0),))
        slow = sim.run(STRAGGLER_LIMITS)
        assert slow.fleet.tokens_generated == baseline.fleet.tokens_generated
        assert slow.fleet.elapsed_s == pytest.approx(2.0 * baseline.fleet.elapsed_s)
        # A straggler wastes wall-clock, not joules per token.
        assert slow.fleet.energy_per_token_j == pytest.approx(
            baseline.fleet.energy_per_token_j
        )

    def test_quiescent_profile_is_byte_identical(self, baseline):
        sim = one_replica_cluster()
        for engine in sim.handles[0].replica.engines:
            engine.fault_profile = StageTimeProfile(())
        assert_reports_identical(baseline, sim.run(STRAGGLER_LIMITS))


# ----------------------------------------------------------------------
# the end-to-end acceptance scenario
# ----------------------------------------------------------------------
N_REQUESTS = 40
OUTPUT_LEN = 128
CRASH_S = 0.5
DETECT_S = 0.2
MTTR_S = 0.5
E2E_LIMITS = SimulationLimits(max_stages=60_000, warmup_stages=0)


def burst_trace():
    return TraceReplayGenerator(
        [
            TraceRecord(arrival_s=i * 0.02, input_len=2048, output_len=OUTPUT_LEN)
            for i in range(N_REQUESTS)
        ]
    )


def crash_cluster(max_attempts):
    faults = FaultInjector(
        FaultConfig(
            crash_times=((CRASH_S, 0),),
            crash_mttr_s=MTTR_S,
            detection_latency_s=DETECT_S,
        )
    )
    return ClusterSimulator(
        SYSTEM, MODEL, burst_trace(), n_replicas=2, max_batch=8, seed=1,
        faults=faults, retry=RetryPolicy(max_attempts=max_attempts, backoff_base_s=0.05),
    )


@pytest.fixture(scope="module")
def crash_runs():
    """One crash schedule, two recovery stacks (full retry vs none)."""
    retry_sim = crash_cluster(max_attempts=4)
    retry_report = retry_sim.run(E2E_LIMITS)
    none_sim = crash_cluster(max_attempts=1)
    none_report = none_sim.run(E2E_LIMITS)
    return (retry_sim, retry_report), (none_sim, none_report)


class TestCrashRecoveryEndToEnd:
    def test_crash_detected_then_repaired_in_place(self, crash_runs):
        (sim, report), _ = crash_runs
        transitions = sim.handles[0].transitions
        assert transitions[0] == (0.0, ReplicaState.ACTIVE)
        assert transitions[1] == (pytest.approx(CRASH_S + DETECT_S), ReplicaState.FAILED)
        assert transitions[2] == (
            pytest.approx(CRASH_S + DETECT_S + MTTR_S),
            ReplicaState.ACTIVE,
        )
        faults = report.fleet.faults
        assert int(faults["crashes"]) == 1
        assert int(faults.get("device_failures", 0)) == 0

    def test_crash_stranded_real_work(self, crash_runs):
        # The schedule is only a recovery test if the crash caught
        # admitted requests mid-flight.
        (_, report), _ = crash_runs
        faults = report.fleet.faults
        assert int(faults["retries"]) > 0
        assert int(faults["lost_prefill_tokens"]) > 0
        assert faults["re_prefill_s"] > 0.0
        assert faults["retry_backoff_s"] > 0.0

    def test_retry_completes_every_retryable_request(self, crash_runs):
        (_, report), _ = crash_runs
        assert int(report.fleet.faults["requests_lost"]) == 0
        assert report.fleet.requests_completed == N_REQUESTS

    def test_outage_window_priced_exactly(self, crash_runs):
        (_, report), _ = crash_runs
        # The outage opens at the crash itself and closes at repair:
        # detection latency plus the repair dwell.
        assert report.fleet.faults["unavailability_s"] == pytest.approx(
            DETECT_S + MTTR_S
        )

    @pytest.mark.parametrize("which", ["retry", "none"])
    def test_generated_tokens_conserved(self, crash_runs, which):
        (_, retry_report), (_, none_report) = crash_runs
        report = retry_report if which == "retry" else none_report
        # Every token the fleet priced is either owned by a completed
        # request or charged to the lost-work ledger — nothing double
        # counted, nothing vanishing.
        lost_generated = int(report.fleet.faults["lost_generated_tokens"])
        assert report.fleet.tokens_generated == (
            report.fleet.requests_completed * OUTPUT_LEN + lost_generated
        )

    def test_first_token_ledger_balances(self, crash_runs):
        # Retraction bookkeeping: exactly one T2FT sample per completed
        # request survives, on both recovery stacks.
        for sim, report in crash_runs:
            merged = MetricsCollector.merged([h.replica.metrics for h in sim.handles])
            assert len(merged.t2ft_samples) == report.fleet.requests_completed

    def test_retry_beats_no_retry(self, crash_runs):
        (_, retry_report), (none_sim, none_report) = crash_runs
        lost = int(none_report.fleet.faults["requests_lost"])
        assert lost > 0, "the no-retry baseline must actually lose work"
        assert none_report.fleet.requests_completed == N_REQUESTS - lost
        assert retry_report.fleet.requests_completed > none_report.fleet.requests_completed
        # Lost requests never produced a first token: counted as
        # unbounded samples, the baseline's tail diverges while the
        # retry stack's stays finite.
        merged = MetricsCollector.merged([h.replica.metrics for h in none_sim.handles])
        assert _p99_with_lost(merged.t2ft_samples, lost) == float("inf")

    def test_retried_requests_measure_from_first_submission(self, crash_runs):
        (sim, _), _ = crash_runs
        merged = MetricsCollector.merged([h.replica.metrics for h in sim.handles])
        # Every arrival predates the crash; a retried request's first
        # token lands only after detection, so its T2FT absorbs the
        # failure penalty rather than resetting at re-admission.
        assert max(merged.t2ft_samples) > DETECT_S
