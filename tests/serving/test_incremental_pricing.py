"""Incremental (delta) stage pricing: accuracy, mechanics, and satellites.

The accuracy contract: with deterministic expert gating, an engine pricing
steady-decode stages by delta must reproduce the exact-pricing run to
within 1e-9 relative on every report metric — across the same eight engine
configurations the invariant suite locks down (monolithic open/closed/
chunked/shedding, split closed/Poisson, homogeneous and heterogeneous
clusters).  Exact mode stays the default everywhere; these tests are the
fast path's accountability.

Also covers the :class:`TransferFeed` running token counter (previously an
O(n) heap walk per router decision).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.executor import StageExecutor, StageWorkload
from repro.core.system import duplex_system
from repro.models.config import mixtral
from repro.serving.cluster import (
    ClusterSimulator,
    MonolithicReplicaSpec,
    PowerOfTwoChoicesRouter,
    SplitReplicaSpec,
)
from repro.serving.engine import IncrementalStagePricer, TransferFeed
from repro.serving.generator import WorkloadSpec
from repro.serving.policy import ChunkedPrefillPolicy, SloAwarePolicy
from repro.serving.request import Request
from repro.serving.simulator import ServingSimulator, SimulationLimits
from repro.serving.split import SplitServingSimulator

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)
LIMITS = SimulationLimits(max_stages=60, warmup_stages=6)
SPEC_OPEN = WorkloadSpec(lin_mean=160, lout_mean=24, lin_cv=0.3, lout_cv=0.3, qps=25.0)
SPEC_CLOSED = WorkloadSpec(lin_mean=160, lout_mean=24, lin_cv=0.3, lout_cv=0.3)


# ----------------------------------------------------------------------
# the eight engine configurations (mirroring tests/serving/test_invariants)
# ----------------------------------------------------------------------
def build_mono_open(seed):
    return ServingSimulator(SYSTEM, MODEL, SPEC_OPEN, max_batch=6, seed=seed)


def build_mono_warm_closed(seed):
    return ServingSimulator(SYSTEM, MODEL, SPEC_CLOSED, max_batch=6, seed=seed)


def build_mono_chunked(seed):
    return ServingSimulator(
        SYSTEM, MODEL, SPEC_OPEN, max_batch=6, seed=seed,
        policy=ChunkedPrefillPolicy(max_prefill_tokens=64),
    )


def build_mono_shedding(seed):
    spec = WorkloadSpec(lin_mean=160, lout_mean=24, lin_cv=0.3, lout_cv=0.3, qps=400.0)
    return ServingSimulator(
        SYSTEM, MODEL, spec, max_batch=4, seed=seed,
        policy=SloAwarePolicy(t2ft_slo_s=0.02, prefer_short_inputs=True),
    )


def build_split_closed(seed):
    return SplitServingSimulator(MODEL, SPEC_CLOSED, max_batch=8, seed=seed)


def build_split_poisson(seed):
    return SplitServingSimulator(MODEL, SPEC_OPEN, max_batch=8, seed=seed)


def build_cluster(seed):
    spec = WorkloadSpec(lin_mean=160, lout_mean=24, lin_cv=0.3, lout_cv=0.3, qps=120.0)
    return ClusterSimulator(
        SYSTEM, MODEL, spec, n_replicas=2,
        router=PowerOfTwoChoicesRouter(seed=seed), max_batch=4, seed=seed,
        memoize_pricing=False, max_requests=50,
    )


def build_cluster_hetero(seed):
    spec = WorkloadSpec(lin_mean=160, lout_mean=24, lin_cv=0.3, lout_cv=0.3, qps=80.0)
    return ClusterSimulator(
        SYSTEM, MODEL, spec, max_batch=6, seed=seed, max_requests=40,
        memoize_pricing=False,
        replicas=(MonolithicReplicaSpec(), SplitReplicaSpec()),
    )


CONFIGURATIONS = {
    "mono-open": build_mono_open,
    "mono-warm-closed": build_mono_warm_closed,
    "mono-chunked-prefill": build_mono_chunked,
    "mono-slo-shedding": build_mono_shedding,
    "split-closed": build_split_closed,
    "split-poisson": build_split_poisson,
    "cluster-homogeneous": build_cluster,
    "cluster-heterogeneous": build_cluster_hetero,
}


def _run(build, seed, incremental: bool):
    sim = build(seed)
    for engine in sim.engines:
        # Deterministic gating isolates the delta path's float error from
        # expert-routing resampling (which delta stages legitimately skip).
        engine.executor.deterministic_gating = True
        if incremental:
            engine.pricer = IncrementalStagePricer(engine.executor)
    report = sim.run(LIMITS)
    pricers = [engine.pricer for engine in sim.engines if engine.pricer is not None]
    return report, pricers


def _assert_reports_close(exact, incremental, rel=1e-9):
    exact_dict = dataclasses.asdict(getattr(exact, "fleet", exact))
    incr_dict = dataclasses.asdict(getattr(incremental, "fleet", incremental))
    assert exact_dict.keys() == incr_dict.keys()
    for key, exact_value in exact_dict.items():
        incr_value = incr_dict[key]
        if isinstance(exact_value, (int, float)):
            assert incr_value == pytest.approx(exact_value, rel=rel, abs=1e-12), key
        elif isinstance(exact_value, dict):
            assert exact_value.keys() == incr_value.keys(), key
            for sub, value in exact_value.items():
                if isinstance(value, (int, float)):
                    assert incr_value[sub] == pytest.approx(value, rel=rel, abs=1e-12), (
                        key, sub,
                    )


@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
def test_incremental_matches_exact_within_tolerance(config):
    build = CONFIGURATIONS[config]
    exact_report, _ = _run(build, seed=7, incremental=False)
    incremental_report, pricers = _run(build, seed=7, incremental=True)
    _assert_reports_close(exact_report, incremental_report)
    assert pricers, "no pricer was attached"


def test_steady_decode_uses_the_delta_path():
    sim = build_mono_warm_closed(seed=3)
    for engine in sim.engines:
        engine.executor.deterministic_gating = True
        engine.pricer = IncrementalStagePricer(engine.executor)
    sim.run(LIMITS)
    pricer = sim.engine.pricer
    assert pricer.delta_stages > 0
    assert 0.0 < pricer.delta_rate <= 1.0


# ----------------------------------------------------------------------
# pricer mechanics at the stage level
# ----------------------------------------------------------------------
def _executor():
    return StageExecutor(SYSTEM, MODEL, seed=0, deterministic_gating=True)


def test_delta_stage_matches_full_reprice():
    executor = _executor()
    pricer = IncrementalStagePricer(executor)
    contexts = np.array([512, 1024, 2048, 300], dtype=np.int64)
    first = pricer.price(StageWorkload(decode_context_lengths=contexts))
    assert pricer.exact_stages == 1 and pricer.delta_stages == 0
    second = pricer.price(StageWorkload(decode_context_lengths=contexts + 1))
    assert pricer.delta_stages == 1
    exact = _executor().run_stage(StageWorkload(decode_context_lengths=contexts + 1))
    assert second.latency_s == pytest.approx(exact.latency_s, rel=1e-9)
    assert second.energy_j == pytest.approx(exact.energy_j, rel=1e-9)
    assert second.tokens_generated == exact.tokens_generated
    assert first.latency_s != second.latency_s  # contexts grew, price moved


def test_composition_changes_fall_back_to_exact():
    executor = _executor()
    pricer = IncrementalStagePricer(executor)
    contexts = np.array([512, 1024], dtype=np.int64)
    pricer.price(StageWorkload(decode_context_lengths=contexts))
    # admission (batch grew) — not a +1 shift
    pricer.price(StageWorkload(decode_context_lengths=np.array([513, 1025, 64])))
    assert pricer.delta_stages == 0 and pricer.exact_stages == 2
    # mixed stage — falls back AND breaks the chain
    pricer.price(
        StageWorkload(
            decode_context_lengths=np.array([514, 1026, 65]), prefill_lengths=(128,)
        )
    )
    assert pricer.exact_stages == 3
    # successor of a mixed stage cannot delta-price either
    pricer.price(StageWorkload(decode_context_lengths=np.array([515, 1027, 66, 128])))
    assert pricer.exact_stages == 4 and pricer.delta_stages == 0


def test_delta_chain_continues_across_stages():
    pricer = IncrementalStagePricer(_executor())
    contexts = np.array([256, 700], dtype=np.int64)
    for step in range(5):
        pricer.price(StageWorkload(decode_context_lengths=contexts + step))
    assert pricer.exact_stages == 1
    assert pricer.delta_stages == 4


# ----------------------------------------------------------------------
# TransferFeed token counter (satellite)
# ----------------------------------------------------------------------
def _request(request_id, input_len, output_len):
    return Request(
        request_id=request_id, arrival_time_s=0.0, input_len=input_len, output_len=output_len
    )


def test_transfer_feed_counter_tracks_push_and_take():
    feed = TransferFeed()
    assert feed.queued_tokens == 0
    requests = [_request(i, 100 + i, 10 + i) for i in range(20)]
    expected = 0
    for i, request in enumerate(requests):
        feed.push(float(20 - i), request)  # deliberately out of order
        expected += request.total_seq_len
        assert feed.queued_tokens == expected
    while len(feed):
        taken = feed.take(100.0)
        expected -= taken.total_seq_len
        assert feed.queued_tokens == expected
    assert feed.queued_tokens == 0
