"""Tests for the multi-replica cluster engine and its routers."""

import pytest

from repro.core.system import duplex_system
from repro.errors import ConfigError, SchedulingError, SimulationError
from repro.models.config import mixtral
from repro.serving.cluster import (
    _LEGAL_TRANSITIONS,
    ClusterSimulator,
    LeastOutstandingTokensRouter,
    ManagedReplica,
    MemoryPressureRouter,
    MonolithicReplicaSpec,
    PowerOfTwoChoicesRouter,
    ReplicaState,
    ReplicaView,
    RoundRobinRouter,
    SplitReplicaSpec,
)
from repro.serving.generator import QueueSource, WorkloadSpec
from repro.serving.paging import PagingConfig
from repro.serving.policy import SloAwarePolicy
from repro.serving.request import Request
from repro.serving.scenarios import long_context
from repro.serving.simulator import SimulationLimits
from repro.serving.trace import TraceRecord, TraceReplayGenerator


MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)
LIMITS = SimulationLimits(max_stages=300, warmup_stages=20)


def poisson_cluster(router=None, n_replicas=4, qps=40.0, seed=1, **kwargs):
    spec = WorkloadSpec(lin_mean=1024, lout_mean=128, lin_cv=0.5, lout_cv=0.5, qps=qps)
    return ClusterSimulator(
        SYSTEM, MODEL, spec, n_replicas=n_replicas, router=router,
        max_batch=24, seed=seed, max_requests=kwargs.pop("max_requests", 300), **kwargs,
    )


def resonant_trace(n=600, gap=0.01, giant=8192):
    """Every 4th request is a giant prompt — resonates with a 4-wide RR cycle."""
    return TraceReplayGenerator(
        [
            TraceRecord(arrival_s=i * gap, input_len=giant if i % 4 == 0 else 256, output_len=128)
            for i in range(n)
        ]
    )


class TestQueueSource:
    def test_fifo_and_protocol(self):
        source = QueueSource()
        assert source.peek() is None
        assert source.peek_arrival() == float("inf")
        source.push(Request(request_id=0, arrival_time_s=1.0, input_len=8, output_len=4))
        source.push(Request(request_id=1, arrival_time_s=2.0, input_len=8, output_len=4))
        assert source.peek().request_id == 0
        assert source.queued_tokens == 24
        assert not source.has_request_at(0.5)
        assert source.has_request_at(1.0)
        assert source.take(1.0).request_id == 0
        assert len(source) == 1 and source.accepted == 2

    def test_rejects_out_of_order_push(self):
        source = QueueSource()
        source.push(Request(request_id=0, arrival_time_s=2.0, input_len=8, output_len=4))
        with pytest.raises(SchedulingError):
            source.push(Request(request_id=1, arrival_time_s=1.0, input_len=8, output_len=4))

    def test_take_from_empty_rejected(self):
        with pytest.raises(SchedulingError):
            QueueSource().take(0.0)


class TestRouters:
    def _views(self, tokens):
        return [
            ReplicaView(index=i, queue_depth=0, outstanding_tokens=t, now_s=0.0)
            for i, t in enumerate(tokens)
        ]

    def _request(self):
        return Request(request_id=0, arrival_time_s=0.0, input_len=8, output_len=4)

    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        views = self._views([0, 0, 0])
        assert [router.choose(views, self._request()) for _ in range(5)] == [0, 1, 2, 0, 1]

    def test_least_outstanding_picks_lightest(self):
        router = LeastOutstandingTokensRouter()
        assert router.choose(self._views([50, 10, 30]), self._request()) == 1

    def test_power_of_two_prefers_lighter_of_sampled(self):
        router = PowerOfTwoChoicesRouter(seed=0)
        views = self._views([1000, 1000, 0, 0])
        # Over many draws the heavy replicas must lose every contested pick:
        # they win only when both samples are heavy.
        choices = [router.choose(views, self._request()) for _ in range(200)]
        heavy = sum(1 for c in choices if c in (0, 1))
        assert heavy < 60  # P(both heavy) = 1/6 ~ 33 of 200

    def test_power_of_two_breaks_ties_randomly(self):
        router = PowerOfTwoChoicesRouter(seed=0)
        views = self._views([0, 0, 0, 0])
        choices = {router.choose(views, self._request()) for _ in range(100)}
        assert len(choices) == 4  # no deterministic hot spot

    def test_power_of_two_single_replica_is_deterministic(self):
        # A fleet of one must neither sample nor consume randomness: the
        # later choice sequence stays seed-aligned once the fleet grows.
        router = PowerOfTwoChoicesRouter(seed=7)
        single = self._views([123])
        for _ in range(5):
            assert router.choose(single, self._request()) == 0
        grown = self._views([0, 0, 0])
        reference = PowerOfTwoChoicesRouter(seed=7)
        assert [router.choose(grown, self._request()) for _ in range(20)] == [
            reference.choose(grown, self._request()) for _ in range(20)
        ]

    def test_power_of_two_tie_break_is_seeded(self):
        # Equal-load ties resolve identically for identical seeds and
        # differently (somewhere in a long sequence) for different seeds.
        views = self._views([10, 10, 10, 10])
        a = PowerOfTwoChoicesRouter(seed=3)
        b = PowerOfTwoChoicesRouter(seed=3)
        seq_a = [a.choose(views, self._request()) for _ in range(50)]
        seq_b = [b.choose(views, self._request()) for _ in range(50)]
        assert seq_a == seq_b
        c = PowerOfTwoChoicesRouter(seed=4)
        assert seq_a != [c.choose(views, self._request()) for _ in range(50)]

    def test_power_of_two_handles_non_contiguous_indices(self):
        # Elastic fleets route over a filtered view list whose indices
        # have gaps; the router must return a view's own index, never a
        # position.
        views = [
            ReplicaView(index=2, queue_depth=0, outstanding_tokens=50, now_s=0.0),
            ReplicaView(index=5, queue_depth=0, outstanding_tokens=10, now_s=0.0),
        ]
        router = PowerOfTwoChoicesRouter(seed=0)
        for _ in range(20):
            assert router.choose(views, self._request()) in (2, 5)

    def test_round_robin_returns_view_indices(self):
        views = [
            ReplicaView(index=4, queue_depth=0, outstanding_tokens=0, now_s=0.0),
            ReplicaView(index=7, queue_depth=0, outstanding_tokens=0, now_s=0.0),
        ]
        router = RoundRobinRouter()
        assert [router.choose(views, self._request()) for _ in range(4)] == [4, 7, 4, 7]

    def _pressured_views(self, loads):
        return [
            ReplicaView(
                index=i,
                queue_depth=0,
                outstanding_tokens=tokens,
                now_s=0.0,
                resident_tokens=resident,
                capacity_tokens=capacity,
            )
            for i, (tokens, resident, capacity) in enumerate(loads)
        ]

    def test_memory_pressure_penalizes_full_replicas(self):
        router = MemoryPressureRouter(pressure_weight=1.0)
        # Replica 0 is slightly lighter on outstanding tokens but nearly
        # out of KV; replica 1 has headroom and wins.
        views = self._pressured_views([(90, 95, 100), (100, 10, 100)])
        assert router.choose(views, self._request()) == 1

    def test_memory_pressure_weight_zero_is_least_outstanding(self):
        blind = MemoryPressureRouter(pressure_weight=0.0)
        reference = LeastOutstandingTokensRouter()
        views = self._pressured_views([(50, 95, 100), (60, 0, 100), (40, 99, 100)])
        assert blind.choose(views, self._request()) == reference.choose(
            views, self._request()
        )

    def test_memory_pressure_handles_unknown_capacity(self):
        router = MemoryPressureRouter()
        views = [
            ReplicaView(index=0, queue_depth=0, outstanding_tokens=50, now_s=0.0),
            ReplicaView(index=1, queue_depth=0, outstanding_tokens=40, now_s=0.0),
        ]
        assert views[0].memory_pressure == 0.0
        assert router.choose(views, self._request()) == 1

    def test_memory_pressure_ties_break_low_index(self):
        router = MemoryPressureRouter()
        views = self._pressured_views([(50, 20, 100), (50, 20, 100)])
        assert router.choose(views, self._request()) == 0

    def test_negative_pressure_weight_rejected(self):
        with pytest.raises(ConfigError):
            MemoryPressureRouter(pressure_weight=-0.5)


class TestClusterSimulation:
    def test_fleet_report_under_poisson(self):
        # Acceptance: N=4 replicas under Poisson load produce a fleet report.
        report = poisson_cluster(RoundRobinRouter()).run(LIMITS)
        assert report.n_replicas == 4
        assert report.fleet.tokens_generated > 0
        assert report.fleet.tbt_p99_s >= report.fleet.tbt_p50_s > 0
        routing = [s for s in report.queue_depth_samples if s.kind == "routing"]
        assert sum(report.requests_routed) == len(routing)
        assert report.requests_rejected == 0

    def test_round_robin_spreads_requests_evenly(self):
        report = poisson_cluster(RoundRobinRouter()).run(LIMITS)
        routed = report.requests_routed
        assert max(routed) - min(routed) <= 1

    def test_fleet_pools_replica_samples(self):
        report = poisson_cluster(RoundRobinRouter()).run(LIMITS)
        per_replica = [r for r in report.replicas if r is not None]
        assert report.fleet.tokens_generated == sum(r.tokens_generated for r in per_replica)
        assert report.fleet.requests_completed == sum(r.requests_completed for r in per_replica)
        assert report.fleet.elapsed_s == max(r.elapsed_s for r in per_replica)

    def test_queue_depth_samples_are_time_ordered(self):
        report = poisson_cluster(RoundRobinRouter()).run(LIMITS)
        times = [s.time_s for s in report.queue_depth_samples]
        assert times == sorted(times)
        assert report.max_queue_depth >= 0

    def test_cadence_samples_cover_drain_and_idle(self):
        # Routing-event sampling alone leaves drain/idle periods
        # invisible; the fixed virtual-clock cadence must keep sampling
        # after the last arrival until the queues actually empty.
        report = poisson_cluster(RoundRobinRouter(), qps=80.0, max_requests=120).run(
            SimulationLimits(max_stages=2000, warmup_stages=0)
        )
        cadence = [s for s in report.queue_depth_samples if s.kind == "cadence"]
        routing = [s for s in report.queue_depth_samples if s.kind == "routing"]
        assert cadence, "cadence sampling is on by default"
        last_arrival = routing[-1].time_s
        drain_samples = [s for s in cadence if s.time_s > last_arrival]
        assert drain_samples, "the drain phase must be sampled"
        assert drain_samples[-1].total == 0, "queues visibly empty by the end"
        # max_queue_depth stays correct: the peak is never in a cadence
        # sample alone (depth peaks right after a routing push).
        assert report.max_queue_depth == max(max(s.depths) for s in routing)

    def test_cadence_sampling_does_not_perturb_metrics(self):
        on = poisson_cluster(RoundRobinRouter(), seed=5).run(LIMITS)
        off = poisson_cluster(RoundRobinRouter(), seed=5, sample_interval_s=None).run(LIMITS)
        assert on.fleet == off.fleet
        assert on.replicas == off.replicas
        assert [s for s in on.queue_depth_samples if s.kind == "routing"] == list(
            off.queue_depth_samples
        )

    def test_sample_interval_validated(self):
        with pytest.raises(ConfigError):
            poisson_cluster(RoundRobinRouter(), sample_interval_s=0.0)

    def test_reproducible_with_seed(self):
        a = poisson_cluster(RoundRobinRouter(), seed=5).run(LIMITS)
        b = poisson_cluster(RoundRobinRouter(), seed=5).run(LIMITS)
        assert a.fleet == b.fleet

    def test_single_replica_matches_cluster_of_one(self):
        report = poisson_cluster(RoundRobinRouter(), n_replicas=1, qps=10.0).run(LIMITS)
        assert report.n_replicas == 1
        routing = [s for s in report.queue_depth_samples if s.kind == "routing"]
        assert report.requests_routed[0] == len(routing)

    def test_closed_loop_workload_rejected(self):
        spec = WorkloadSpec(lin_mean=64, lout_mean=16)
        with pytest.raises(ConfigError):
            ClusterSimulator(SYSTEM, MODEL, spec, n_replicas=2)

    def test_zero_replicas_rejected(self):
        spec = WorkloadSpec(lin_mean=64, lout_mean=16, qps=1.0)
        with pytest.raises(ConfigError):
            ClusterSimulator(SYSTEM, MODEL, spec, n_replicas=0)

    def test_run_without_stages_raises_cleanly(self):
        # max_requests=0 routes nothing: the fleet report must fail with an
        # explanation, not a crash from deep inside MetricsCollector.
        with pytest.raises(SimulationError, match="no stages"):
            poisson_cluster(RoundRobinRouter(), max_requests=0).run(LIMITS)

    def test_trace_source_drives_cluster(self):
        trace = resonant_trace(n=100)
        report = ClusterSimulator(
            SYSTEM, MODEL, trace, n_replicas=4, router=RoundRobinRouter(),
            max_batch=24, seed=0,
        ).run(LIMITS)
        assert sum(report.requests_routed) == 100
        assert report.fleet.requests_completed > 0

    def test_slo_policy_plugs_into_replicas(self):
        report = poisson_cluster(
            RoundRobinRouter(), qps=400.0,
            policy_factory=lambda: SloAwarePolicy(t2ft_slo_s=0.25),
        ).run(LIMITS)
        assert report.requests_rejected > 0


class TestHeterogeneousFleet:
    def _hetero(self, router=None, qps=30.0, seed=1, **kwargs):
        spec = WorkloadSpec(lin_mean=1024, lout_mean=96, lin_cv=0.3, lout_cv=0.3, qps=qps)
        return ClusterSimulator(
            SYSTEM, MODEL, spec, router=router, max_batch=16, seed=seed,
            max_requests=kwargs.pop("max_requests", 120),
            replicas=(MonolithicReplicaSpec(), MonolithicReplicaSpec(), SplitReplicaSpec()),
            **kwargs,
        )

    def test_mixed_fleet_serves_end_to_end(self):
        report = self._hetero(RoundRobinRouter()).run(LIMITS)
        assert report.n_replicas == 3
        assert report.replica_kinds == ("monolithic", "monolithic", "split")
        assert report.fleet.requests_completed > 0
        # Every replica flavour took traffic and produced tokens.
        assert all(routed > 0 for routed in report.requests_routed)
        per_replica = [r for r in report.replicas if r is not None]
        assert len(per_replica) == 3
        assert all(r.tokens_generated > 0 for r in per_replica)

    def test_split_replica_runs_decode_only_stages(self):
        report = self._hetero(RoundRobinRouter()).run(LIMITS)
        split_report = report.replicas[2]
        # The split replica's decode partition never mixes prefills into
        # decode stages, but its prefill stages are recorded as mixed —
        # so its decoding-only ratio sits strictly between the two.
        assert split_report is not None
        assert 0.0 < split_report.decoding_only_stage_ratio < 1.0

    def test_router_views_expose_replica_kinds(self):
        sim = self._hetero(RoundRobinRouter())
        kinds = [replica.view().kind for replica in sim.replicas]
        assert kinds == ["monolithic", "monolithic", "split"]

    def test_load_aware_router_balances_mixed_fleet(self):
        report = self._hetero(LeastOutstandingTokensRouter()).run(LIMITS)
        assert report.fleet.requests_completed > 0
        # Routing stops when every replica's stage budget is spent, so not
        # all 120 offered requests necessarily route — but each routing
        # event must be sampled, and every replica must participate.
        routing = [s for s in report.queue_depth_samples if s.kind == "routing"]
        assert sum(report.requests_routed) == len(routing)
        assert all(routed > 0 for routed in report.requests_routed)

    def test_replica_spec_overrides_batch(self):
        spec = WorkloadSpec(lin_mean=256, lout_mean=32, qps=10.0)
        sim = ClusterSimulator(
            SYSTEM, MODEL, spec, seed=0,
            replicas=(MonolithicReplicaSpec(max_batch=2), MonolithicReplicaSpec(max_batch=8)),
        )
        assert sim.replicas[0].engine.metrics.effective_batch == 2
        assert sim.replicas[1].engine.metrics.effective_batch == 8

    def test_spec_list_and_n_replicas_must_agree(self):
        spec = WorkloadSpec(lin_mean=256, lout_mean=32, qps=10.0)
        with pytest.raises(ConfigError):
            ClusterSimulator(
                SYSTEM, MODEL, spec, n_replicas=2, replicas=(MonolithicReplicaSpec(),)
            )
        with pytest.raises(ConfigError):
            ClusterSimulator(SYSTEM, MODEL, spec, n_replicas=None, replicas=())
        with pytest.raises(ConfigError):
            ClusterSimulator(SYSTEM, MODEL, spec)  # neither count nor specs


class TestRoutingQuality:
    def test_power_of_two_beats_round_robin_on_resonant_load(self):
        # Acceptance: po2 fleet p99 TBT <= round-robin at the same offered
        # load.  Periodic giant prompts resonate with the RR cycle (one
        # replica receives every giant); load-aware sampling dodges them.
        limits = SimulationLimits(max_stages=800, warmup_stages=40)
        rr = ClusterSimulator(
            SYSTEM, MODEL, resonant_trace(), n_replicas=4,
            router=RoundRobinRouter(), max_batch=24, seed=0,
        ).run(limits)
        po2 = ClusterSimulator(
            SYSTEM, MODEL, resonant_trace(), n_replicas=4,
            router=PowerOfTwoChoicesRouter(seed=0), max_batch=24, seed=0,
        ).run(limits)
        assert po2.fleet.tbt_p99_s <= rr.fleet.tbt_p99_s
        # The margin is structural (about 2x), not a seed accident.
        assert po2.fleet.tbt_p99_s < 0.8 * rr.fleet.tbt_p99_s

    def test_least_outstanding_tokens_beats_round_robin_on_resonant_load(self):
        limits = SimulationLimits(max_stages=800, warmup_stages=40)
        rr = ClusterSimulator(
            SYSTEM, MODEL, resonant_trace(), n_replicas=4,
            router=RoundRobinRouter(), max_batch=24, seed=0,
        ).run(limits)
        lot = ClusterSimulator(
            SYSTEM, MODEL, resonant_trace(), n_replicas=4,
            router=LeastOutstandingTokensRouter(), max_batch=24, seed=0,
        ).run(limits)
        assert lot.fleet.tbt_p99_s <= rr.fleet.tbt_p99_s


@pytest.mark.paging
class TestPagedCluster:
    def _paged_cluster(self, paging, router=None, qps=20.0, n=60, seed=1):
        scenario = long_context(
            lin_median=49152, lout_median=512, sigma=0.8, max_factor=8.0,
            t2ft_slo_s=30.0,
        ).at_qps(qps)
        return ClusterSimulator(
            SYSTEM, MODEL, scenario.source(seed=seed, max_requests=n),
            n_replicas=2, router=router, max_batch=96, seed=seed,
            paging=paging,
        )

    def test_paged_fleet_reports_pooled_paging_activity(self):
        limits = SimulationLimits(max_stages=100_000, warmup_stages=0)
        sim = self._paged_cluster(
            PagingConfig(), router=MemoryPressureRouter(), qps=30.0, n=70
        )
        report = sim.run(limits)
        assert sum(report.requests_routed) == 70
        # Nothing lost: every routed request completed or was shed.
        assert report.fleet.requests_completed + report.requests_rejected == 70
        assert report.fleet.paging["preemptions"] > 0
        # Per-replica accounting drained clean.
        for replica in sim.replicas:
            manager = replica.scheduler.paging.manager
            assert manager.resident_tokens == 0
            assert manager.evicted_tokens == 0

    def test_paging_disabled_fleet_reports_empty_paging(self):
        report = poisson_cluster(RoundRobinRouter(), qps=10.0).run(LIMITS)
        assert report.fleet.paging == {}


@pytest.mark.chaos
class TestLifecycleTransitionLog:
    """Every legal edge logs with its timestamp; every illegal edge raises."""

    @pytest.fixture(scope="class")
    def replica(self):
        # One shared data plane: these tests exercise only the
        # control-plane handle wrapped around it.
        sim = poisson_cluster(n_replicas=1)
        handle = sim.handles[0]
        return handle.replica, handle.spec

    def _handle(self, replica, state):
        return ManagedReplica(replica[0], replica[1], state=state)

    def test_every_legal_edge_logs_with_timestamp(self, replica):
        for source, targets in _LEGAL_TRANSITIONS.items():
            for target in targets:
                handle = self._handle(replica, source)
                handle.set_state(2.5, target)
                assert handle.state is target
                assert handle.transitions == [(0.0, source), (2.5, target)]

    def test_every_illegal_edge_raises(self, replica):
        for source, targets in _LEGAL_TRANSITIONS.items():
            for target in ReplicaState:
                if target is source or target in targets:
                    continue
                handle = self._handle(replica, source)
                with pytest.raises(SchedulingError, match="illegal lifecycle transition"):
                    handle.set_state(2.5, target)
                assert handle.state is source  # the refused edge left no trace
                assert handle.transitions == [(0.0, source)]

    def test_same_state_is_a_no_op(self, replica):
        handle = self._handle(replica, ReplicaState.ACTIVE)
        handle.set_state(1.0, ReplicaState.ACTIVE)
        assert handle.transitions == [(0.0, ReplicaState.ACTIVE)]

    def test_failure_and_repair_stamp_instants(self, replica):
        handle = self._handle(replica, ReplicaState.ACTIVE)
        handle.set_state(2.0, ReplicaState.FAILED)
        assert handle.failed_at == 2.0
        handle.set_state(3.0, ReplicaState.ACTIVE)
        assert handle.activated_at == 3.0
        assert handle.failed_at == 2.0  # the log keeps history
        assert handle.transitions == [
            (0.0, ReplicaState.ACTIVE),
            (2.0, ReplicaState.FAILED),
            (3.0, ReplicaState.ACTIVE),
        ]

    def test_failed_replica_stops_accruing_lifetime(self, replica):
        handle = self._handle(replica, ReplicaState.ACTIVE)
        handle.set_state(2.0, ReplicaState.FAILED)
        assert handle.lifetime_s(10.0) == pytest.approx(2.0)
        handle.set_state(3.0, ReplicaState.ACTIVE)  # repaired: accrues again
        assert handle.lifetime_s(10.0) == pytest.approx(10.0)

    def test_failed_replica_refuses_routing(self, replica):
        handle = self._handle(replica, ReplicaState.ACTIVE)
        handle.set_state(2.0, ReplicaState.FAILED)
        with pytest.raises(SchedulingError, match="only ACTIVE"):
            handle.route(Request(request_id=0, arrival_time_s=3.0, input_len=8, output_len=4))
