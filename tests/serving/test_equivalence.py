"""Cross-simulator equivalence tests (tier 2 — see TESTING.md).

The unified event-driven core makes strong equivalences *structural*
rather than coincidental; these tests pin them down:

* a :class:`ClusterSimulator` of one round-robin replica IS a
  :class:`ServingSimulator` — identical per-request metrics, identical
  report, float-for-float;
* the refactored two-partition :class:`SplitServingSimulator` reproduces
  the pre-refactor Fig. 16 numbers captured in
  ``tests/golden/fig16_split.json`` before the engine extraction landed.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.core.system import duplex_system
from repro.models.config import mixtral
from repro.serving.cluster import ClusterSimulator, RoundRobinRouter
from repro.serving.generator import WorkloadSpec
from repro.serving.simulator import ServingSimulator, SimulationLimits
from repro.serving.trace import TraceRecord, TraceReplayGenerator

GOLDEN_FIG16 = Path(__file__).parent.parent / "golden" / "fig16_split.json"

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)


def _pair(workload, seed=3, max_batch=24, limits=None, **cluster_kwargs):
    """Run the same workload through both simulators, same seed."""
    limits = limits or SimulationLimits(max_stages=200, warmup_stages=12)
    solo = ServingSimulator(
        SYSTEM, MODEL, workload, max_batch=max_batch, seed=seed
    )
    solo_report = solo.run(limits)
    fleet = ClusterSimulator(
        SYSTEM,
        MODEL,
        workload,
        n_replicas=1,
        router=RoundRobinRouter(),
        max_batch=max_batch,
        seed=seed,
        memoize_pricing=False,  # the simulator's exact-pricing default
        **cluster_kwargs,
    )
    fleet_report = fleet.run(limits)
    return solo, solo_report, fleet, fleet_report


class TestClusterOfOneEqualsSimulator:
    def test_reports_identical_under_poisson(self):
        spec = WorkloadSpec(lin_mean=1024, lout_mean=128, lin_cv=0.5, lout_cv=0.5, qps=10.0)
        _, solo_report, _, fleet_report = _pair(spec)
        assert solo_report == fleet_report.fleet

    def test_per_request_samples_identical(self):
        # Field-level equality of the pooled report could in principle hide
        # compensating per-request differences; the raw sample lists cannot.
        spec = WorkloadSpec(lin_mean=2048, lout_mean=96, lin_cv=1.0, lout_cv=0.3, qps=14.0)
        solo, _, fleet, _ = _pair(spec, seed=11)
        solo_metrics = solo.engine.metrics
        replica_metrics = fleet.replicas[0].metrics
        assert solo_metrics._t2ft == replica_metrics._t2ft
        assert solo_metrics._e2e == replica_metrics._e2e
        assert solo_metrics._tbt_hist == replica_metrics._tbt_hist
        assert solo_metrics._tbt_count == replica_metrics._tbt_count

    def test_every_report_field_matches(self):
        # Report every diverging field by name (debuggability when it breaks).
        spec = WorkloadSpec(lin_mean=512, lout_mean=64, lin_cv=0.2, lout_cv=0.2, qps=30.0)
        _, solo_report, _, fleet_report = _pair(spec, seed=5)
        for field in dataclasses.fields(solo_report):
            assert getattr(solo_report, field.name) == getattr(fleet_report.fleet, field.name), (
                f"field {field.name} diverges between simulator and cluster-of-one"
            )

    def test_trace_replay_identical(self):
        def trace():
            return TraceReplayGenerator(
                [
                    TraceRecord(
                        arrival_s=0.02 * i,
                        input_len=4096 if i % 5 == 0 else 512,
                        output_len=48,
                    )
                    for i in range(80)
                ]
            )

        limits = SimulationLimits(max_stages=400, warmup_stages=8)
        solo_report = ServingSimulator(
            SYSTEM, MODEL, trace(), max_batch=16, seed=2
        ).run(limits)
        fleet_report = ClusterSimulator(
            SYSTEM, MODEL, trace(), n_replicas=1, router=RoundRobinRouter(),
            max_batch=16, seed=2, memoize_pricing=False,
        ).run(limits)
        assert solo_report == fleet_report.fleet


class TestSplitMatchesPreRefactorGolden:
    """The two-partition engine must reproduce the hand-rolled split loop.

    ``tests/golden/fig16_split.json`` was captured from the pre-refactor
    ``SplitServingSimulator`` (its own clock and admission loop); the
    engine-based reimplementation must land on the same floats.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        assert GOLDEN_FIG16.exists(), "fig16 golden snapshot missing"
        return json.loads(GOLDEN_FIG16.read_text())

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments import fig16

        return fig16.run(
            pairs=((256, 256),),
            batch=32,
            limits=SimulationLimits(max_stages=340, warmup_stages=8),
            seed=0,
        )

    def test_split_throughput_exact(self, golden, rows):
        assert rows[0].split_tokens_per_s == golden[0]["split_tokens_per_s"]

    def test_split_latency_percentiles_exact(self, golden, rows):
        assert rows[0].split_tbt == golden[0]["split_tbt"]
        assert rows[0].split_t2ft_p50 == golden[0]["split_t2ft_p50"]

    def test_split_effective_batch_exact(self, golden, rows):
        assert rows[0].split_batch == golden[0]["split_batch"]

    def test_duplex_side_untouched(self, golden, rows):
        # The monolithic comparison arm moved onto the engine too.
        assert rows[0].duplex_tokens_per_s == golden[0]["duplex_tokens_per_s"]
        assert rows[0].duplex_tbt == golden[0]["duplex_tbt"]
