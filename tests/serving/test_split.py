"""Tests for the two-partition split deployment beyond the Fig. 16 path."""

import pytest

from repro.errors import ConfigError
from repro.models.config import mixtral
from repro.parallel.topology import ClusterTopology
from repro.serving.generator import WorkloadSpec
from repro.serving.simulator import SimulationLimits
from repro.serving.split import SplitServingSimulator, split_partitions
from repro.serving.trace import TraceRecord, TraceReplayGenerator

MODEL = mixtral()


def _trace(records):
    return TraceReplayGenerator(records)


class TestKvHandoffLink:
    """The KV handoff must ride the link the topology actually provides."""

    def test_single_node_split_stays_on_nvlink(self):
        sim = SplitServingSimulator(
            MODEL, _trace([TraceRecord(0.0, 256, 4)]), max_batch=8, seed=0
        )
        assert sim._kv_crosses_nodes is False

    def test_multi_node_split_crosses_the_fabric(self):
        sim = SplitServingSimulator(
            MODEL,
            _trace([TraceRecord(0.0, 256, 4)]),
            max_batch=8,
            seed=0,
            topology=ClusterTopology(2, 8),
        )
        assert sim._kv_crosses_nodes is True

    def test_handoff_prices_the_topology_link(self):
        # Identical request, two deployments: the multi-node handoff must
        # be priced over the slower inter-node link, never NVLink.
        record = TraceRecord(arrival_s=0.0, input_len=4096, output_len=2)
        kv_bytes = record.input_len * MODEL.kv_bytes_per_token

        intra = SplitServingSimulator(MODEL, _trace([record]), max_batch=8, seed=0)
        inter = SplitServingSimulator(
            MODEL, _trace([record]), max_batch=8, seed=0, topology=ClusterTopology(2, 8)
        )
        t_intra = intra._collectives.point_to_point_time(
            kv_bytes, crosses_nodes=intra._kv_crosses_nodes
        )
        t_inter = inter._collectives.point_to_point_time(
            kv_bytes, crosses_nodes=inter._kv_crosses_nodes
        )
        assert t_inter > t_intra
        # Both legs match a hand-priced transfer over their own link.
        for sim, t in ((intra, t_intra), (inter, t_inter)):
            bandwidth, latency = sim._collectives.topology.link(sim._kv_crosses_nodes)
            assert t == pytest.approx(kv_bytes / bandwidth + latency)

    def test_multi_node_partitions_split_by_nodes(self):
        prefill, decode = split_partitions(MODEL, ClusterTopology(2, 8))
        assert prefill.topology.n_nodes == 1
        assert prefill.topology.devices_per_node == 8
        assert decode.topology == prefill.topology

    def test_odd_node_count_rejected(self):
        with pytest.raises(ConfigError):
            split_partitions(MODEL, ClusterTopology(3, 8))


class TestOpenLoopSplit:
    def test_finite_trace_drains_and_stops(self):
        source = _trace(
            [TraceRecord(arrival_s=0.05 * i, input_len=256, output_len=8) for i in range(12)]
        )
        sim = SplitServingSimulator(MODEL, source, max_batch=8, seed=0)
        report = sim.run(SimulationLimits(max_stages=200, warmup_stages=0))
        assert report.requests_completed == 12
        assert source.exhausted

    def test_arrival_during_transfer_window_is_not_starved(self):
        # Request 0 prefills immediately; its KV transfer is in flight when
        # request 1 arrives with the prefill partition free.  The idle jump
        # must stop at the arrival, not skip ahead to the transfer-ready
        # instant — request 1's T2FT is prefill work, not someone else's
        # transfer wait.
        first = SplitServingSimulator(
            MODEL,
            _trace([TraceRecord(arrival_s=0.0, input_len=4096, output_len=4)]),
            max_batch=8,
            seed=0,
        )
        first.run(SimulationLimits(max_stages=40, warmup_stages=0))
        solo_prefill_t2ft = first.metrics._t2ft[0]

        both = SplitServingSimulator(
            MODEL,
            _trace(
                [
                    TraceRecord(arrival_s=0.0, input_len=4096, output_len=4),
                    # Arrives mid-transfer: after request 0's prefill ends,
                    # well before a 4096-token KV transfer completes.
                    TraceRecord(
                        arrival_s=solo_prefill_t2ft * 1.001, input_len=4096, output_len=4
                    ),
                ]
            ),
            max_batch=8,
            seed=0,
        )
        both.run(SimulationLimits(max_stages=60, warmup_stages=0))
        t2fts = both.metrics._t2ft
        assert len(t2fts) == 2
        # With the prefill partition free at its arrival, request 1's T2FT
        # matches a solo prefill (small numeric slack for context effects);
        # a starved jump would add the KV-transfer wait on top.
        assert t2fts[1] <= solo_prefill_t2ft * 1.05

    def test_poisson_split_completes_requests(self):
        spec = WorkloadSpec(lin_mean=512, lout_mean=16, lin_cv=0.3, lout_cv=0.3, qps=20.0)
        report = SplitServingSimulator(MODEL, spec, max_batch=8, seed=1).run(
            SimulationLimits(max_stages=150, warmup_stages=4)
        )
        assert report.requests_completed > 0
        assert report.tbt_p50_s > 0
