"""TransferFeed and KV-paging coordinator transfer-pricing tests.

The coordinator treats each host-link direction as a *serial resource*:
a transfer starts no earlier than the previous one on the same direction
finished (a busy cursor).  These tests pin that contract under bursty
concurrent migrations — N simultaneous evictions cost N transfer times
of wall clock, never one — plus the crash-recovery paths layered on the
same machinery (abandon-all harvest, host-KV adoption).
"""

import pytest

from repro.errors import SchedulingError
from repro.serving.engine import KvPagingCoordinator, TransferFeed
from repro.serving.paging import EvictionPolicy, HostLink, PagedKvManager
from repro.serving.request import Request

pytestmark = [pytest.mark.paging, pytest.mark.chaos]


def request(request_id, input_len=100, output_len=10):
    r = Request(
        request_id=request_id, arrival_time_s=0.0,
        input_len=input_len, output_len=output_len,
    )
    r.start_prefill()
    r.finish_prefill(0.0)  # DECODING with context_len == input_len
    return r


def coordinator(capacity_tokens=1000, **manager_kwargs):
    # bandwidth 1000 B/s at 10 B/token: a 100-token context moves in
    # exactly 1.0 s — transfer arithmetic stays readable.
    manager_kwargs.setdefault("link", HostLink(bandwidth=1000.0, latency_s=0.0))
    manager = PagedKvManager(
        capacity_tokens=capacity_tokens, kv_bytes_per_token=10.0,
        policy=EvictionPolicy.MIGRATE, **manager_kwargs,
    )
    # The executor prices RECOMPUTE replays only; MIGRATE never touches it.
    return KvPagingCoordinator(manager, executor=None)


class TestTransferFeed:
    def test_orders_by_ready_instant(self):
        feed = TransferFeed()
        feed.push(3.0, request(0))
        feed.push(1.0, request(1))
        feed.push(2.0, request(2))
        assert feed.peek_arrival() == 1.0
        assert [feed.take(10.0).request_id for _ in range(3)] == [1, 2, 0]

    def test_same_instant_ties_break_by_push_order(self):
        feed = TransferFeed()
        for rid in (7, 3, 5):
            feed.push(1.0, request(rid))
        assert [feed.take(1.0).request_id for _ in range(3)] == [7, 3, 5]

    def test_queued_tokens_tracks_in_flight_reservations(self):
        feed = TransferFeed()
        a, b = request(0, input_len=100, output_len=10), request(1, input_len=50, output_len=5)
        feed.push(1.0, a)
        feed.push(2.0, b)
        assert feed.queued_tokens == a.total_seq_len + b.total_seq_len
        feed.take(1.0)
        assert feed.queued_tokens == b.total_seq_len
        feed.take(2.0)
        assert feed.queued_tokens == 0

    def test_readiness_protocol(self):
        feed = TransferFeed()
        assert feed.peek() is None
        assert feed.peek_arrival() == float("inf")
        feed.push(1.5, request(0))
        assert not feed.has_request_at(1.0)
        assert feed.has_request_at(1.5)
        assert len(feed) == 1

    def test_take_from_empty_rejected(self):
        with pytest.raises(SchedulingError):
            TransferFeed().take(0.0)


class TestSerialLinkCursors:
    """Concurrent migrations queue on the link; they never overlap."""

    def _evict_burst(self, coord, n=3, now_s=0.0):
        victims = [request(rid) for rid in range(n)]
        for victim in victims:
            coord.manager.admit(victim.request_id, victim.total_seq_len)
            coord.evict(victim, now_s)
        return victims

    def test_burst_evictions_serialize_outbound(self):
        coord = coordinator()
        self._evict_burst(coord, n=3, now_s=0.0)
        # Each 100-token context takes 1.0 s out; the device KV of victim
        # k is clear only after every earlier out-transfer finished.
        assert [round(clear_s, 9) for _, _, clear_s in coord._parked] == [1.0, 2.0, 3.0]

    def test_burst_resumes_serialize_inbound_after_outbound_clears(self):
        coord = coordinator()
        self._evict_burst(coord, n=3, now_s=0.0)
        for _ in range(3):
            coord.resume_next(0.0)
        # Victim k's in-transfer starts at max(out-clear, inbound cursor):
        # 1->2, 2->3, 3->4.  No two inbound transfers overlap.
        landings = []
        while len(coord.resume_feed):
            landings.append(coord.resume_feed.peek_arrival())
            coord.resume_feed.take(float("inf"))
        assert landings == pytest.approx([2.0, 3.0, 4.0])
        for earlier, later in zip(landings, landings[1:], strict=False):
            assert later - earlier >= 1.0  # >= one full transfer apart

    def test_idle_link_does_not_backdate(self):
        # The cursor is a floor, not a schedule: after the link goes
        # idle, the next transfer starts at "now", not at the cursor.
        coord = coordinator()
        first = request(0)
        coord.manager.admit(first.request_id, first.total_seq_len)
        coord.evict(first, 0.0)  # clears at 1.0
        late = request(1)
        coord.manager.admit(late.request_id, late.total_seq_len)
        coord.evict(late, 5.0)  # link idle since 1.0: starts at 5.0
        assert coord._parked[-1][2] == pytest.approx(6.0)

    def test_no_overtaking_between_park_and_resume(self):
        coord = coordinator()
        victims = self._evict_burst(coord, n=3, now_s=0.0)
        assert coord.peek_parked() is victims[0]
        assert coord.resume_next(0.0) is victims[0]  # eviction order
        assert coord.peek_parked() is victims[1]

    def test_link_degradation_scales_transfers(self):
        coord = coordinator()
        coord.link_scale = lambda t: 4.0
        self._evict_burst(coord, n=2, now_s=0.0)
        assert [round(clear_s, 9) for _, _, clear_s in coord._parked] == [4.0, 8.0]

    def test_occupancy_views(self):
        coord = coordinator()
        self._evict_burst(coord, n=3, now_s=0.0)
        assert (coord.parked_count, coord.in_transit_count, coord.paged_count) == (3, 0, 3)
        coord.resume_next(0.0)
        assert (coord.parked_count, coord.in_transit_count, coord.paged_count) == (2, 1, 3)
        assert coord.take_ready(1.0) == []  # lands at 2.0, not yet
        assert [r.request_id for r in coord.take_ready(2.0)] == [0]
        assert coord.paged_count == 2


class TestCrashHarvestAndAdoption:
    def test_abandon_all_splits_parked_from_in_transit(self):
        coord = coordinator()
        a, b = request(0), request(1)
        for r in (a, b):
            coord.manager.admit(r.request_id, r.total_seq_len)
            coord.evict(r, 0.0)
        coord.resume_next(0.0)  # a goes in transit
        parked, in_transit = coord.abandon_all()
        assert [(r.request_id, cached) for r, cached in parked] == [(1, 100)]
        assert [r.request_id for r in in_transit] == [0]
        # The manager forgot everything: clean books for in-place repair.
        assert coord.manager.resident_tokens == 0
        assert coord.manager.evicted_tokens == 0
        assert len(coord.resume_feed) == 0

    def test_adopted_request_resumes_paying_inbound_only(self):
        dead = coordinator()
        victim = request(0)
        dead.manager.admit(victim.request_id, victim.total_seq_len)
        dead.evict(victim, 0.0)
        [(harvested, cached)], _ = dead.abandon_all()

        survivor = coordinator()
        survivor.adopt(harvested, cached, now_s=5.0)
        assert survivor.manager.evicted_tokens == harvested.total_seq_len
        assert survivor.manager.stats.migrated_in_bytes == 0.0  # not priced yet
        assert survivor.resume_next(5.0) is harvested
        # One inbound leg (the host copy streams to the new device) and
        # never a second outbound one.
        assert survivor.resume_feed.peek_arrival() == pytest.approx(6.0)
        assert survivor.manager.stats.migrated_in_bytes == pytest.approx(1000.0)
        assert survivor.manager.stats.migrated_out_bytes == 0.0
