"""Tests for the elastic fleet control plane (marked ``elastic``).

Three layers:

* policy unit tests — each :class:`AutoscalingPolicy` decides correctly
  on hand-built :class:`FleetView` snapshots;
* controller mechanics — lifecycle transitions, warm vs cold starts,
  routing restricted to ACTIVE replicas, static-policy equivalence with
  the fixed :class:`ClusterSimulator` (float-for-float);
* the end-to-end acceptance scenario — a deterministic drip/flash-crowd/
  sparse-tail arrival replay through the SLO-tracking policy must scale
  up, drain back down, lose zero requests, beat the static min-replica
  baseline on SLO attainment, and undercut the static max-replica
  baseline on replica-seconds, with the fleet time series reflecting
  every lifecycle transition.
"""

import dataclasses

import pytest

from repro.core.executor import SharedPricingCache
from repro.core.system import duplex_system
from repro.errors import ConfigError, SchedulingError
from repro.models.config import mixtral
from repro.serving.autoscaler import (
    ElasticFleetSimulator,
    FleetView,
    QueueDepthPolicy,
    ScheduledScalingPolicy,
    SloTrackingPolicy,
    StaticReplicaPolicy,
)
from repro.serving.cluster import (
    ClusterSimulator,
    ReplicaState,
    RoundRobinRouter,
)
from repro.serving.generator import WorkloadSpec
from repro.serving.metrics import MetricsCollector
from repro.serving.request import Request
from repro.serving.scenarios import (
    DiurnalArrivals,
    GaussianLengths,
    PoissonArrivals,
    ReplayedArrivals,
    Scenario,
    TenantSpec,
)
from repro.serving.simulator import SimulationLimits

pytestmark = pytest.mark.elastic

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)
LIMITS = SimulationLimits(max_stages=60000, warmup_stages=0)


def make_view(**overrides) -> FleetView:
    base = dict(
        now_s=100.0,
        provisioning=0,
        warming=0,
        active=2,
        draining=0,
        retired=0,
        min_replicas=1,
        max_replicas=8,
        queue_depth=0,
        outstanding_tokens=0,
        arrival_rate_qps=4.0,
        utilization=0.5,
        recent_t2ft_s=(),
        recent_tbt_s=(),
        recent_tbt_weights=(),
        shed_requests=0,
    )
    base.update(overrides)
    return FleetView(**base)


# ----------------------------------------------------------------------
# policy unit tests
# ----------------------------------------------------------------------
class TestStaticPolicy:
    def test_always_returns_n(self):
        policy = StaticReplicaPolicy(3)
        assert policy.target_replicas(make_view(active=1)) == 3
        assert policy.target_replicas(make_view(active=7, queue_depth=100)) == 3

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            StaticReplicaPolicy(0)


class TestQueueDepthPolicy:
    def test_scales_up_above_threshold(self):
        policy = QueueDepthPolicy(scale_up_depth=4.0, scale_down_depth=0.5, cooldown_s=0.0)
        view = make_view(active=2, queue_depth=10)  # 5 per replica
        assert policy.target_replicas(view) == 3

    def test_scales_down_below_threshold(self):
        policy = QueueDepthPolicy(scale_up_depth=4.0, scale_down_depth=0.5, cooldown_s=0.0)
        view = make_view(active=3, queue_depth=0)
        assert policy.target_replicas(view) == 2

    def test_hysteresis_band_holds(self):
        policy = QueueDepthPolicy(scale_up_depth=4.0, scale_down_depth=0.5, cooldown_s=0.0)
        view = make_view(active=2, queue_depth=4)  # 2 per replica: inside the band
        assert policy.target_replicas(view) == 2

    def test_cooldown_suppresses_consecutive_actions(self):
        policy = QueueDepthPolicy(scale_up_depth=4.0, scale_down_depth=0.5, cooldown_s=30.0)
        hot = make_view(now_s=100.0, active=2, queue_depth=20)
        assert policy.target_replicas(hot) == 3
        hotter = make_view(now_s=110.0, active=2, queue_depth=40)
        assert policy.target_replicas(hotter) == 2  # pool unchanged: cooling down
        later = make_view(now_s=131.0, active=2, queue_depth=40)
        assert policy.target_replicas(later) == 3

    def test_never_proposes_below_min(self):
        policy = QueueDepthPolicy(cooldown_s=0.0)
        view = make_view(active=1, queue_depth=0, min_replicas=1)
        assert policy.target_replicas(view) == 1

    def test_threshold_ordering_validated(self):
        with pytest.raises(ConfigError):
            QueueDepthPolicy(scale_up_depth=1.0, scale_down_depth=2.0)


class TestSloTrackingPolicy:
    def test_scales_up_on_missed_attainment(self):
        policy = SloTrackingPolicy(t2ft_slo_s=0.5, cooldown_s=0.0, min_samples=4)
        view = make_view(active=2, recent_t2ft_s=(0.1, 0.9, 1.2, 2.0))  # 25% met
        assert policy.target_replicas(view) == 3

    def test_holds_until_window_has_signal(self):
        policy = SloTrackingPolicy(t2ft_slo_s=0.5, cooldown_s=0.0, min_samples=8)
        view = make_view(active=2, recent_t2ft_s=(0.9, 1.2))
        assert policy.target_replicas(view) == 2

    def test_scales_down_on_relaxed_attainment_and_shallow_queue(self):
        policy = SloTrackingPolicy(
            t2ft_slo_s=0.5, target_attainment=0.9, relax_attainment=0.95,
            cooldown_s=0.0, min_samples=4,
        )
        good = tuple(0.1 for _ in range(16))
        assert policy.target_replicas(make_view(active=3, recent_t2ft_s=good)) == 2
        # Deep queues veto the scale-down even on good attainment.
        loaded = make_view(active=3, queue_depth=30, recent_t2ft_s=good)
        assert policy.target_replicas(loaded) == 3

    def test_tbt_objective_is_token_weighted(self):
        policy = SloTrackingPolicy(tbt_slo_s=0.01, cooldown_s=0.0, min_samples=2)
        view = make_view(
            active=2,
            recent_tbt_s=(0.005, 0.05),
            recent_tbt_weights=(1.0, 99.0),  # nearly every token missed
        )
        assert policy.target_replicas(view) == 3

    def test_needs_at_least_one_objective(self):
        with pytest.raises(ConfigError):
            SloTrackingPolicy()


class TestScheduledPolicy:
    def test_tracks_rate_envelope(self):
        policy = ScheduledScalingPolicy(lambda t: 12.0, qps_per_replica=4.0)
        assert policy.target_replicas(make_view()) == 3

    def test_lead_time_provisions_ahead_of_ramp(self):
        rate = lambda t: 2.0 if t < 120.0 else 20.0  # noqa: E731
        early = ScheduledScalingPolicy(rate, qps_per_replica=4.0, lead_time_s=30.0)
        late = ScheduledScalingPolicy(rate, qps_per_replica=4.0, lead_time_s=0.0)
        view = make_view(now_s=100.0)
        assert late.target_replicas(view) == 1
        assert early.target_replicas(view) == 5  # sees the ramp coming

    def test_from_arrivals_uses_instantaneous_rate(self):
        arrivals = DiurnalArrivals(base_qps=2.0, peak_qps=10.0, period_s=400.0)
        policy = ScheduledScalingPolicy.from_arrivals(arrivals, qps_per_replica=2.0)
        view_peak = make_view(now_s=100.0)  # sin peak of the cycle
        assert policy.target_replicas(view_peak) == 5

    def test_from_arrivals_falls_back_to_mean(self):
        policy = ScheduledScalingPolicy.from_arrivals(
            PoissonArrivals(qps=6.0), qps_per_replica=2.0
        )
        assert policy.target_replicas(make_view(now_s=0.0)) == 3
        assert policy.target_replicas(make_view(now_s=1e6)) == 3


class TestFleetViewAttainment:
    def test_t2ft_attainment(self):
        view = make_view(recent_t2ft_s=(0.1, 0.2, 0.9, 1.5))
        assert view.t2ft_attainment(0.5) == pytest.approx(0.5)

    def test_empty_window_is_none(self):
        assert make_view().t2ft_attainment(0.5) is None
        assert make_view().tbt_attainment(0.5) is None

    def test_tbt_attainment_weighted(self):
        view = make_view(recent_tbt_s=(0.004, 0.02), recent_tbt_weights=(3.0, 1.0))
        assert view.tbt_attainment(0.01) == pytest.approx(0.75)


# ----------------------------------------------------------------------
# controller mechanics
# ----------------------------------------------------------------------
def _spec(qps=10.0):
    return WorkloadSpec(lin_mean=512, lout_mean=48, lin_cv=0.3, lout_cv=0.3, qps=qps)


def elastic(policy, max_requests=120, **kwargs):
    defaults = dict(
        min_replicas=1,
        max_replicas=4,
        control_interval_s=1.0,
        provision_delay_s=1.0,
        warmup_delay_s=1.0,
        warm_start_delay_s=0.25,
        max_batch=4,
        seed=5,
        max_requests=max_requests,
    )
    defaults.update(kwargs)
    workload = defaults.pop("workload", _spec())
    return ElasticFleetSimulator(SYSTEM, MODEL, workload, policy, **defaults)


class TestControllerMechanics:
    def test_static_policy_keeps_fleet_fixed(self):
        sim = elastic(StaticReplicaPolicy(2), min_replicas=2, max_replicas=2)
        report = sim.run(LIMITS)
        assert report.replica_states == ("active", "active")
        assert all(e.state == "active" for e in report.replica_events)
        assert report.fleet_samples  # the time series still records

    def test_managed_replica_refuses_routing_unless_active(self):
        sim = elastic(StaticReplicaPolicy(1), max_replicas=1)
        handle = sim.handles[0]
        handle.set_state(1.0, ReplicaState.DRAINING)
        with pytest.raises(SchedulingError, match="only ACTIVE"):
            handle.route(Request(request_id=0, arrival_time_s=2.0, input_len=8, output_len=4))

    def test_lifecycle_transition_order_is_legal(self):
        sim = elastic(
            QueueDepthPolicy(scale_up_depth=1.0, scale_down_depth=0.25, cooldown_s=2.0),
            workload=_spec(qps=60.0),
            max_requests=300,
        )
        report = sim.run(LIMITS)
        legal = {
            None: {ReplicaState.PROVISIONING, ReplicaState.ACTIVE},
            ReplicaState.PROVISIONING: {ReplicaState.WARMING, ReplicaState.RETIRED},
            ReplicaState.WARMING: {ReplicaState.ACTIVE, ReplicaState.RETIRED},
            ReplicaState.ACTIVE: {ReplicaState.DRAINING},
            ReplicaState.DRAINING: {ReplicaState.RETIRED},
        }
        for handle in sim.handles:
            previous = None
            last_t = -1.0
            for t, state in handle.transitions:
                assert t >= last_t, "transition times must be monotone"
                assert state in legal[previous], (
                    f"illegal transition {previous} -> {state} on replica {handle.index}"
                )
                previous, last_t = state, t

    def test_cold_then_warm_start_dwell(self):
        # The first scale-up prices against a cold fleet cache only when
        # the fleet starts cold; once the initial replica has priced
        # stages, the shared cache is warm and spin-ups take the short
        # dwell.  (The initial replica serves from t=0, so by the first
        # scale-up the cache always holds entries — warm path.)
        sim = elastic(
            QueueDepthPolicy(scale_up_depth=1.0, scale_down_depth=0.25, cooldown_s=1.0),
            workload=_spec(qps=80.0),
            max_requests=200,
        )
        sim.run(LIMITS)
        scaled_up = [h for h in sim.handles if h.provisioned_at > 0.0]
        assert scaled_up, "the queue-depth policy should have provisioned capacity"
        for handle in scaled_up:
            dwell = handle.active_at - handle.warming_at
            assert dwell == pytest.approx(sim.warm_start_delay_s)

    def test_cold_start_without_shared_cache(self):
        sim = elastic(
            QueueDepthPolicy(scale_up_depth=1.0, scale_down_depth=0.25, cooldown_s=1.0),
            workload=_spec(qps=80.0),
            max_requests=200,
            shared_pricing_cache=False,
        )
        sim.run(LIMITS)
        scaled_up = [h for h in sim.handles if h.provisioned_at > 0.0]
        assert scaled_up
        for handle in scaled_up:
            dwell = handle.active_at - handle.warming_at
            assert dwell == pytest.approx(sim.warmup_delay_s)

    def test_warm_cache_snapshot_installs(self):
        donor = SharedPricingCache()
        sim_a = elastic(
            StaticReplicaPolicy(1), max_replicas=1, shared_pricing_cache=donor,
            max_requests=40,
        )
        sim_a.run(LIMITS)
        assert len(donor) > 0
        fleet_cache = SharedPricingCache()
        elastic(
            StaticReplicaPolicy(1), max_replicas=1,
            shared_pricing_cache=fleet_cache, warm_cache=donor,
        )
        assert len(fleet_cache) == len(donor)

    def test_routers_only_see_active_replicas(self):
        seen = []

        class SpyRouter(RoundRobinRouter):
            def choose(self, views, request):
                seen.append(tuple(v.state for v in views))
                return super().choose(views, request)

        sim = elastic(
            QueueDepthPolicy(scale_up_depth=1.0, scale_down_depth=0.25, cooldown_s=2.0),
            workload=_spec(qps=60.0),
            max_requests=250,
            router=SpyRouter(),
        )
        sim.run(LIMITS)
        assert seen
        assert all(state == "active" for states in seen for state in states)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            elastic(StaticReplicaPolicy(1), min_replicas=0)
        with pytest.raises(ConfigError):
            elastic(StaticReplicaPolicy(1), min_replicas=3, max_replicas=2)
        with pytest.raises(ConfigError):
            elastic(StaticReplicaPolicy(1), initial_replicas=9)
        with pytest.raises(ConfigError):
            elastic(StaticReplicaPolicy(1), control_interval_s=0.0)
        with pytest.raises(ConfigError):
            elastic(StaticReplicaPolicy(1), warm_cache=b"x", shared_pricing_cache=False)


class TestStaticElasticEquivalence:
    """An elastic fleet under the static policy IS the fixed cluster."""

    def _pair(self, n, seed=3, max_requests=120):
        workload = _spec(qps=30.0)
        classic = ClusterSimulator(
            SYSTEM, MODEL, workload, n_replicas=n, router=RoundRobinRouter(),
            max_batch=8, seed=seed, max_requests=max_requests,
        ).run(LIMITS)
        elastic_report = ElasticFleetSimulator(
            SYSTEM, MODEL, workload, StaticReplicaPolicy(n),
            min_replicas=n, max_replicas=n, router=RoundRobinRouter(),
            max_batch=8, seed=seed, max_requests=max_requests,
            control_interval_s=1.0,
        ).run(LIMITS)
        return classic, elastic_report

    def test_fleet_report_identical(self):
        classic, elastic_report = self._pair(n=3)
        for field in dataclasses.fields(classic.fleet):
            assert getattr(classic.fleet, field.name) == getattr(
                elastic_report.fleet, field.name
            ), f"field {field.name} diverges between fixed and elastic-static fleets"

    def test_per_replica_reports_and_routing_identical(self):
        classic, elastic_report = self._pair(n=2)
        assert classic.replicas == elastic_report.replicas
        assert classic.requests_routed == elastic_report.requests_routed
        assert classic.requests_rejected == elastic_report.requests_rejected
        assert classic.queue_depth_samples == elastic_report.queue_depth_samples


# ----------------------------------------------------------------------
# the end-to-end acceptance scenario
# ----------------------------------------------------------------------
def _e2e_scenario():
    """Deterministic drip -> flash crowd -> sparse tail arrival replay."""
    drip = tuple(float(i) for i in range(10))
    flash = tuple(10.0 + i / 60.0 for i in range(300))
    tail = tuple(16.0 + 1.5 * i for i in range(40))
    return Scenario(
        name="elastic-e2e",
        arrivals=ReplayedArrivals(times_s=drip + flash + tail),
        tenants=(TenantSpec("chat", GaussianLengths(512, 48, lin_cv=0.3, lout_cv=0.3)),),
    )


E2E_REQUESTS = 350
E2E_SLO_S = 0.5


def _run_e2e(policy, initial=None, max_replicas=4):
    scenario = _e2e_scenario()
    sim = ElasticFleetSimulator(
        SYSTEM, MODEL, scenario.source(seed=0, max_requests=E2E_REQUESTS),
        policy=policy, min_replicas=1, max_replicas=max_replicas,
        initial_replicas=initial, control_interval_s=1.0,
        provision_delay_s=1.0, warmup_delay_s=1.0, warm_start_delay_s=0.25,
        max_batch=2, seed=5, slo_window=24,
    )
    report = sim.run(LIMITS)
    merged = MetricsCollector.merged([h.replica.metrics for h in sim.handles])
    return sim, report, merged


@pytest.fixture(scope="module")
def e2e():
    """One SLO-tracking run plus the two static baselines (shared)."""
    tracking = _run_e2e(SloTrackingPolicy(t2ft_slo_s=E2E_SLO_S, cooldown_s=3.0, min_samples=8))
    static_min = _run_e2e(StaticReplicaPolicy(1), initial=1)
    static_max = _run_e2e(StaticReplicaPolicy(4), initial=4)
    return tracking, static_min, static_max


class TestEndToEndSloScaling:
    def test_scales_up_and_drains_back_down(self, e2e):
        (_, report, _), _, _ = e2e
        states = [e.state for e in report.replica_events]
        assert "provisioning" in states, "the flash crowd should trigger scale-up"
        assert "warming" in states
        assert "draining" in states, "the sparse tail should trigger scale-down"
        assert "retired" in states
        assert report.peak_active_replicas > 1
        # The fleet ends smaller than its peak: drained back down.
        assert report.fleet_samples[-1].active < report.peak_active_replicas

    def test_zero_requests_lost_during_drain(self, e2e):
        (sim, report, _), _, _ = e2e
        assert sum(report.requests_routed) == E2E_REQUESTS
        assert report.requests_rejected == 0
        assert report.fleet.requests_completed == E2E_REQUESTS
        # Ledger-level: every request routed to a replica finished there,
        # including on the replicas that drained and retired.
        for handle in sim.handles:
            replica = handle.replica
            assert replica.in_flight == 0
            finished = set(replica.engines[-1].finished_ids)
            routed = replica.inbox.accepted
            assert len(finished) == routed

    def test_beats_static_min_at_lower_cost_than_static_max(self, e2e):
        (_, track_report, track_metrics), (_, min_report, min_metrics), (
            _,
            max_report,
            max_metrics,
        ) = e2e
        track_att = track_metrics.t2ft_slo_attainment(E2E_SLO_S)
        min_att = min_metrics.t2ft_slo_attainment(E2E_SLO_S)
        max_att = max_metrics.t2ft_slo_attainment(E2E_SLO_S)
        assert track_att > min_att, "scaling must strictly beat the min-replica baseline"
        assert track_report.replica_seconds <= max_report.replica_seconds, (
            "scaling must not cost more replica-seconds than always-max"
        )
        # Sanity on the bracket: max is at least as good as tracking.
        assert max_att >= track_att

    def test_time_series_reflects_every_transition(self, e2e):
        (_, report, _), _, _ = e2e
        events = list(report.replica_events)
        assert events == sorted(events, key=lambda e: e.time_s)
        state_of: dict[int, str] = {}
        cursor = 0
        for sample in report.fleet_samples:
            while cursor < len(events) and events[cursor].time_s <= sample.time_s:
                state_of[events[cursor].replica] = events[cursor].state
                cursor += 1
            counts = {
                "provisioning": 0, "warming": 0, "active": 0,
                "draining": 0, "retired": 0,
            }
            for state in state_of.values():
                counts[state] += 1
            assert (
                sample.provisioning, sample.warming, sample.active,
                sample.draining, sample.retired,
            ) == (
                counts["provisioning"], counts["warming"], counts["active"],
                counts["draining"], counts["retired"],
            ), f"fleet sample at t={sample.time_s} disagrees with the event log"
        assert cursor == len(events), "every transition must precede some fleet sample"

    def test_deterministic_repeat(self):
        _, a, _ = _run_e2e(
            SloTrackingPolicy(t2ft_slo_s=E2E_SLO_S, cooldown_s=3.0, min_samples=8)
        )
        _, b, _ = _run_e2e(
            SloTrackingPolicy(t2ft_slo_s=E2E_SLO_S, cooldown_s=3.0, min_samples=8)
        )
        assert a.fleet == b.fleet
        assert a.replica_events == b.replica_events
        assert a.fleet_samples == b.fleet_samples
        assert a.replica_seconds == b.replica_seconds


@pytest.mark.chaos
class TestDrainingExitHandoff:
    """A spent-budget DRAINING exit hands queued work back atomically.

    White-box: drives ``_update_lifecycle`` directly so the test can pin
    the exact instant the handle retires with a routed-but-unadmitted
    request still in its queue — the request must land in the cluster
    retry heap (free re-route, no attempt charge) in the same call that
    logs the RETIRED transition, never vanish with the handle.
    """

    def test_spent_budget_retire_requeues_unadmitted_requests(self):
        sim = elastic(StaticReplicaPolicy(1), max_batch=1)
        limits = SimulationLimits(max_stages=1, warmup_stages=0)
        sim._begin_run(limits)
        handle = sim.handles[0]
        first = Request(request_id=0, arrival_time_s=0.0, input_len=64, output_len=8)
        second = Request(request_id=1, arrival_time_s=0.0, input_len=64, output_len=8)
        handle.route(first)
        handle.route(second)

        handle.set_state(0.5, ReplicaState.DRAINING)
        sim._draining.append(handle)
        # One stage admits `first` (max_batch=1) and spends the whole
        # budget; `second` is still queued when the drain walk observes
        # the spent budget at t=1.0.
        sim._update_lifecycle(1.0, limits)

        assert handle.state is ReplicaState.RETIRED
        assert sim._draining == []
        assert len(handle.replica.inbox) == 0
        assert not handle.replica.scheduler.waiting
        [(ready_s, _, requeued, cached, backoff_s, metrics)] = sim._retry_due
        assert requeued is second
        assert ready_s == 1.0  # immediately re-routable at the tick
        assert cached == -1 and backoff_s == 0.0 and metrics is None
        assert requeued.attempts == 1  # free re-route: no attempt charge
