"""End-to-end CLI tests: exit codes, formats, baseline flags.

``test_cli_fails_on_seeded_synthetic_violation`` is the acceptance
canary for the CI job: a planted violation must fail the exact command
CI runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from tools.simlint.cli import main

pytestmark = pytest.mark.simlint

REPO_ROOT = Path(__file__).resolve().parents[2]
VIOLATION = "import time\n\n\ndef f():\n    return time.perf_counter()\n"


def seed_violation(tmp_path: Path) -> Path:
    target = tmp_path / "src" / "repro" / "serving"
    target.mkdir(parents=True)
    mod = target / "planted.py"
    mod.write_text(VIOLATION, encoding="utf-8")
    return mod


def run_cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.simlint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT)},
    )


def test_cli_fails_on_seeded_synthetic_violation(tmp_path):
    seed_violation(tmp_path)
    proc = run_cli([str(tmp_path / "src"), "--baseline", "none"], cwd=REPO_ROOT)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "SL002" in proc.stdout


def test_cli_clean_run_exits_zero(tmp_path):
    target = tmp_path / "src" / "repro" / "serving"
    target.mkdir(parents=True)
    (target / "clean.py").write_text("def f(now_s):\n    return now_s\n", encoding="utf-8")
    proc = run_cli([str(tmp_path / "src"), "--baseline", "none"], cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_github_format_annotations(tmp_path):
    mod = seed_violation(tmp_path)
    proc = run_cli(
        [str(tmp_path / "src"), "--baseline", "none", "--format", "github"], cwd=REPO_ROOT
    )
    assert proc.returncode == 1
    line = proc.stdout.strip().splitlines()[0]
    assert line.startswith("::error file=")
    assert mod.as_posix() in line and "title=simlint SL002" in line


def test_cli_json_format(tmp_path):
    seed_violation(tmp_path)
    proc = run_cli([str(tmp_path / "src"), "--baseline", "none", "--format", "json"], cwd=REPO_ROOT)
    findings = json.loads(proc.stdout)
    assert [f["code"] for f in findings] == ["SL002"]


def test_cli_update_then_enforce_baseline(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    seed_violation(tmp_path)
    baseline = tmp_path / "baseline.json"

    assert main(["src", "--baseline", str(baseline), "--update-baseline"]) == 0
    assert main(["src", "--baseline", str(baseline)]) == 0, "grandfathered"

    # the planted violation gets fixed -> entry is stale -> must shrink
    mod = tmp_path / "src" / "repro" / "serving" / "planted.py"
    mod.write_text("def f(now_s):\n    return now_s\n", encoding="utf-8")
    assert main(["src", "--baseline", str(baseline)]) == 1, "stale baseline entry must fail"

    assert main(["src", "--baseline", str(baseline), "--update-baseline"]) == 0
    assert json.loads(baseline.read_text())["entries"] == []
    assert main(["src", "--baseline", str(baseline)]) == 0


def test_cli_select_restricts_rules(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    seed_violation(tmp_path)
    assert main(["src", "--baseline", "none", "--select", "SL001"]) == 0
    assert main(["src", "--baseline", "none", "--select", "SL002"]) == 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007"):
        assert code in out


def test_cli_fixture_dirs_excluded_by_default(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad_dir = tmp_path / "src" / "repro" / "serving" / "fixtures"
    bad_dir.mkdir(parents=True)
    (bad_dir / "bad.py").write_text(VIOLATION, encoding="utf-8")
    assert main(["src", "--baseline", "none"]) == 0
    assert main(["src", "--baseline", "none", "--include-fixtures"]) == 1


def test_repo_tree_is_clean():
    """The shipping invocation: the whole tree lints clean right now."""
    assert main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"), "--baseline", "none"]) == 0
