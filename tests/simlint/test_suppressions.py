"""Suppression-comment parsing and enforcement."""

from __future__ import annotations

import pytest

from tools.simlint.core import META_CODE, lint_source, parse_suppressions

pytestmark = pytest.mark.simlint

PATH = "src/repro/serving/mod.py"
CLOCKY = "import time\n\n\ndef f():\n    return time.perf_counter(){comment}\n"


def codes(source: str) -> list[str]:
    return [f.code for f in lint_source(PATH, source)]


def test_justified_suppression_silences():
    src = CLOCKY.format(comment="  # simlint: ignore[SL002] host-side progress meter only")
    assert codes(src) == []


def test_suppression_without_reason_is_a_finding():
    src = CLOCKY.format(comment="  # simlint: ignore[SL002]")
    assert codes(src) == [META_CODE, "SL002"], "unjustified suppression silences nothing"


def test_suppression_of_wrong_code_does_not_silence():
    src = CLOCKY.format(comment="  # simlint: ignore[SL001] wrong rule entirely")
    got = codes(src)
    assert "SL002" in got, "the finding survives"
    assert META_CODE in got, "and the useless suppression is itself flagged"


def test_comment_only_line_covers_next_line():
    src = (
        "import time\n"
        "\n"
        "\n"
        "def f():\n"
        "    # simlint: ignore[SL002] measured outside the virtual clock on purpose\n"
        "    return time.perf_counter()\n"
    )
    assert codes(src) == []


def test_multi_code_suppression():
    src = (
        "import time, heapq\n"
        "\n"
        "\n"
        "def f(h):\n"
        "    heapq.heappush(h, (time.perf_counter(), h))  # simlint: ignore[SL002, SL004] fixture: both on one line\n"
    )
    assert codes(src) == []


def test_unused_suppression_is_flagged():
    src = "def f():\n    return 1  # simlint: ignore[SL002] nothing actually fires here\n"
    findings = lint_source(PATH, src)
    assert [f.code for f in findings] == [META_CODE]
    assert "unused suppression" in findings[0].message


def test_meta_code_cannot_be_suppressed():
    src = "def f():\n    return 1  # simlint: ignore[SL000] trying to silence the meta rule\n"
    findings = lint_source(PATH, src)
    assert [f.code for f in findings] == [META_CODE]
    assert "cannot be suppressed" in findings[0].message


def test_malformed_codes_are_flagged():
    src = "def f():\n    return 1  # simlint: ignore[SLxyz] not a code\n"
    findings = lint_source(PATH, src)
    assert [f.code for f in findings] == [META_CODE]
    assert "malformed" in findings[0].message


def test_syntax_inside_string_literal_is_inert():
    src = 'DOC = "write # simlint: ignore[SL002] like this"\n'
    assert codes(src) == []


def test_parse_suppressions_unit():
    lines = (
        "x = 1  # simlint: ignore[SL001] one",
        "# simlint: ignore[SL002, SL003] two",
        "y = 2",
    )
    suppressions, problems = parse_suppressions(lines)
    assert problems == []
    assert [(s.covers, s.codes) for s in suppressions] == [
        (1, ("SL001",)),
        (3, ("SL002", "SL003")),
    ]
    assert suppressions[1].reason == "two"
