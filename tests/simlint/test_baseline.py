"""Baseline mechanics: grandfathering works, and the file can only shrink."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tools.simlint import baseline as baseline_mod
from tools.simlint.core import lint_paths

pytestmark = pytest.mark.simlint

VIOLATION = "import time\n\n\ndef f():\n    return time.perf_counter()\n"
CLEAN = "def f(now_s: float) -> float:\n    return now_s\n"


def write_module(tmp_path: Path, source: str) -> Path:
    # the repro/serving path shape engages SL002's scope
    mod_dir = tmp_path / "src" / "repro" / "serving"
    mod_dir.mkdir(parents=True, exist_ok=True)
    mod = mod_dir / "mod.py"
    mod.write_text(source, encoding="utf-8")
    return mod


def lint(tmp_path: Path):
    return lint_paths([tmp_path / "src"]).findings


def test_baseline_grandfathers_known_finding(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write_module(tmp_path, VIOLATION)
    findings = lint(tmp_path)
    assert [f.code for f in findings] == ["SL002"]

    entries = baseline_mod.build(findings)
    assert len(entries) == 1 and entries[0].rule == "SL002"

    outcome = baseline_mod.apply(findings, entries)
    assert outcome.clean
    assert outcome.grandfathered == 1
    assert outcome.new_findings == ()


def test_new_finding_not_in_baseline_fails(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write_module(tmp_path, VIOLATION)
    entries = baseline_mod.build(lint(tmp_path))

    # a second, different violation appears
    write_module(tmp_path, VIOLATION + "\n\ndef g():\n    return time.time()\n")
    outcome = baseline_mod.apply(lint(tmp_path), entries)
    assert not outcome.clean
    assert len(outcome.new_findings) == 1
    assert "time.time" in outcome.new_findings[0].message


def test_fixed_violation_makes_entry_stale(tmp_path, monkeypatch):
    """The shrink guarantee: fixing the code *fails* the run until the
    baseline entry is deleted, so the file can never quietly stay fat."""
    monkeypatch.chdir(tmp_path)
    write_module(tmp_path, VIOLATION)
    entries = baseline_mod.build(lint(tmp_path))

    write_module(tmp_path, CLEAN)
    outcome = baseline_mod.apply(lint(tmp_path), entries)
    assert outcome.new_findings == ()
    assert len(outcome.stale_entries) == 1
    assert not outcome.clean, "a stale entry must fail the run"

    # deleting the stale entry restores a clean run
    outcome = baseline_mod.apply(lint(tmp_path), [])
    assert outcome.clean


def test_fingerprint_survives_line_moves(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write_module(tmp_path, VIOLATION)
    entries = baseline_mod.build(lint(tmp_path))

    # prepend code: the finding moves lines but its content is unchanged
    write_module(tmp_path, "X = 1\nY = 2\n" + VIOLATION)
    outcome = baseline_mod.apply(lint(tmp_path), entries)
    assert outcome.clean, "line churn must not invalidate the baseline"


def test_fingerprint_dies_when_line_changes(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write_module(tmp_path, VIOLATION)
    entries = baseline_mod.build(lint(tmp_path))

    changed = VIOLATION.replace("return time.perf_counter()", "return 1.0 * time.perf_counter()")
    write_module(tmp_path, changed)
    outcome = baseline_mod.apply(lint(tmp_path), entries)
    assert len(outcome.new_findings) == 1, "edited line is a new finding"
    assert len(outcome.stale_entries) == 1, "and the old entry is stale"


def test_meta_findings_cannot_be_grandfathered(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write_module(tmp_path, "def f(:\n")
    findings = lint(tmp_path)
    assert [f.code for f in findings] == ["SL000"]
    assert baseline_mod.build(findings) == [], "SL000 never enters a baseline"
    outcome = baseline_mod.apply(findings, [])
    assert not outcome.clean


def test_save_and_load_roundtrip(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write_module(tmp_path, VIOLATION)
    entries = baseline_mod.build(lint(tmp_path))
    path = tmp_path / "baseline.json"
    baseline_mod.save(path, entries)

    loaded = baseline_mod.load(path)
    assert loaded == entries
    payload = json.loads(path.read_text())
    assert payload["version"] == baseline_mod.VERSION


def test_build_preserves_reasons(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write_module(tmp_path, VIOLATION)
    findings = lint(tmp_path)
    first = baseline_mod.build(findings)
    justified = [baseline_mod.BaselineEntry(
        rule=e.rule, path=e.path, fingerprint=e.fingerprint, count=e.count,
        reason="progress meter, priced outside the run",
    ) for e in first]
    rebuilt = baseline_mod.build(findings, justified)
    assert rebuilt[0].reason == "progress meter, priced outside the run"


def test_unsupported_version_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        baseline_mod.load(path)
