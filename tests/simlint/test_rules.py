"""Fixture-driven rule tests: one flagged and one clean fixture per rule.

Each fixture under ``fixtures/`` is real Python source that either
violates exactly one rule (``*_flagged``) or exercises the rule's
sanctioned idioms (``*_clean``).  Fixtures are linted under a synthetic
``src/repro/...`` path so the rules' path scopes engage; the scope
exemptions themselves are pinned separately below.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.simlint.core import lint_source
from tools.simlint.registry import RULES, all_rules

pytestmark = pytest.mark.simlint

FIXTURES = Path(__file__).parent / "fixtures"

#: rule -> (synthetic lint path, minimum flagged findings)
CASES = {
    "SL001": ("src/repro/serving/fixture_mod.py", 4),
    "SL002": ("src/repro/serving/fixture_mod.py", 4),
    "SL003": ("src/repro/serving/fixture_mod.py", 5),
    "SL004": ("src/repro/serving/fixture_mod.py", 2),
    "SL005": ("src/repro/serving/fixture_mod.py", 3),
    "SL006": ("src/repro/serving/fixture_mod.py", 5),
    "SL007": ("src/repro/serving/fixture_mod.py", 2),
}


def lint_fixture(name: str, path: str) -> list:
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    return lint_source(path, source)


@pytest.mark.parametrize("code", sorted(CASES))
def test_flagged_fixture_fires(code: str):
    path, expected = CASES[code]
    findings = lint_fixture(f"{code.lower()}_flagged", path)
    fired = [f for f in findings if f.code == code]
    assert len(fired) >= expected, [f.as_text() for f in findings]
    assert all(f.code == code for f in findings), (
        "flagged fixtures must violate exactly one rule: " + str([f.as_text() for f in findings])
    )


@pytest.mark.parametrize("code", sorted(CASES))
def test_clean_fixture_is_silent(code: str):
    path, _ = CASES[code]
    findings = lint_fixture(f"{code.lower()}_clean", path)
    assert findings == [], [f.as_text() for f in findings]


def test_every_registered_rule_has_fixture_pair():
    """Adding SL008 without fixtures must fail loudly."""
    all_rules()  # force registration
    for code in RULES:
        assert code in CASES, f"no fixture case registered for {code}"
        assert (FIXTURES / f"{code.lower()}_flagged.py").exists()
        assert (FIXTURES / f"{code.lower()}_clean.py").exists()


def test_rule_catalog_metadata():
    for code, cls in RULES.items():
        rule = cls()
        assert rule.code == code
        assert rule.name and rule.name != "unnamed"
        assert rule.rationale


# ----------------------------------------------------------------------
# path-scope exemptions
# ----------------------------------------------------------------------
def test_sl002_exempts_run_all_and_nonrepro():
    source = (FIXTURES / "sl002_flagged.py").read_text(encoding="utf-8")
    assert lint_source("src/repro/experiments/run_all.py", source) == []
    assert lint_source("benchmarks/perf/perf_suite.py", source) == []


def test_sl003_scoped_to_serving_and_models():
    source = (FIXTURES / "sl003_flagged.py").read_text(encoding="utf-8")
    assert lint_source("src/repro/core/fixture_mod.py", source) == []
    assert [f.code for f in lint_source("src/repro/models/fixture_mod.py", source)] != []


def test_sl007_exempts_experiment_drivers():
    source = (FIXTURES / "sl007_flagged.py").read_text(encoding="utf-8")
    assert lint_source("src/repro/experiments/capacity.py", source) == []


def test_sl001_scoped_to_repro():
    """Tests construct seeded rngs freely; the rule watches the package."""
    source = "import numpy as np\nRNG = np.random.default_rng(0)\n"
    assert lint_source("tests/serving/test_something.py", source) == []
    assert [f.code for f in lint_source("src/repro/serving/mod.py", source)] == ["SL001"]


def test_sl006_applies_everywhere():
    source = "def f(x=[]):\n    return x\n"
    assert [f.code for f in lint_source("tests/helpers.py", source)] == ["SL006"]


# ----------------------------------------------------------------------
# targeted behaviors the repo relies on
# ----------------------------------------------------------------------
def test_sl004_eventclock_shapes_pass():
    """The engine's real push shapes must stay clean."""
    source = (
        "import heapq\n"
        "class Clock:\n"
        "    def __init__(self):\n"
        "        self._heap = []\n"
        "        self._pushed = 0\n"
        "    def push(self, ready_s, request):\n"
        "        self._pushed += 1\n"
        "        heapq.heappush(self._heap, (ready_s, self._pushed, request))\n"
    )
    assert lint_source("src/repro/serving/engine_like.py", source) == []


def test_sl005_catches_plain_class_with_public_mutation():
    source = (
        "class RunStats:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "    def bump(self):\n"
        "        self.count += 1\n"
    )
    assert [f.code for f in lint_source("src/repro/serving/mod.py", source)] == ["SL005"]


def test_syntax_error_becomes_meta_finding():
    findings = lint_source("src/repro/serving/broken.py", "def f(:\n")
    assert [f.code for f in findings] == ["SL000"]
    assert "does not parse" in findings[0].message
