"""SL007 fixture: environment reads inside simulation code."""

import os


def pick_workers() -> int:
    return int(os.environ.get("WORKERS", "4"))


def debug_enabled() -> bool:
    return os.getenv("DEBUG") is not None
