"""SL005 fixture: immutable observation surfaces, private accumulators."""

import enum
from dataclasses import dataclass
from typing import NamedTuple


@dataclass(frozen=True)
class DripStats:
    drips: int = 0
    volume: float = 0.0


@dataclass(frozen=True, slots=True)
class LeakEvent:
    at_s: float = 0.0


class TupleReport(NamedTuple):
    total: float


class KindOfEvent(enum.Enum):
    START = "start"
    END = "end"


class Accumulator:
    """Not suffix-named, free to be mutable."""

    def __init__(self) -> None:
        self.total = 0.0


class QuietReport:
    """Suffix-named but all state private, snapshot out."""

    def __init__(self) -> None:
        self._total = 0.0

    @property
    def total(self) -> float:
        return self._total
