"""SL003 fixture: hash-ordered set iteration in a pricing path."""


class ReplicaBook:
    def __init__(self) -> None:
        self.active_ids: set[int] = set()

    def drain_order(self) -> list[int]:
        # materializing a set in hash order
        return list(self.active_ids)

    def total_cost(self, costs: dict[int, float]) -> float:
        # float accumulation over a set: order-sensitive
        return sum(costs[i] for i in self.active_ids)


def tenants_of(requests) -> tuple[str, ...]:
    names = {r.tenant for r in requests}
    return tuple(names)


def walk(pending: frozenset) -> None:
    for item in pending:
        print(item)


def union_walk(a: set[int], b: set[int]) -> list[int]:
    return [x for x in a | b]
