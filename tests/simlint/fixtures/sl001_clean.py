"""SL001 fixture: the sanctioned seed-plumbing shapes."""

import numpy as np


class SeededComponent:
    def __init__(self, n: int, seed: int | None = None) -> None:
        # constructing from a seed parameter is the sanctioned idiom.
        self._rng = np.random.default_rng(seed)
        self.n = n

    def draw(self) -> int:
        return int(self._rng.integers(self.n))


def child_stream(seed: int, name_seed: int) -> np.random.Generator:
    # named child streams derive from the parent seed parameter.
    sequence = np.random.SeedSequence(seed, spawn_key=(name_seed,))
    return np.random.default_rng(sequence)


def consumes_rng(rng: np.random.Generator) -> float:
    # receiving a Generator as a parameter is the other sanctioned shape
    # (the annotation alone must not fire).
    return float(rng.random())
