"""SL005 fixture: mutable observation-surface classes."""

from dataclasses import dataclass


@dataclass
class DripStats:
    drips: int = 0
    volume: float = 0.0


@dataclass(frozen=False)
class LeakEvent:
    at_s: float = 0.0


class PlainReport:
    def __init__(self) -> None:
        self.total = 0.0

    def add(self, x: float) -> None:
        self.total += x
