"""SL006 fixture: mutable defaults shared across calls."""


def track(request, seen=[]):
    seen.append(request)
    return seen


def config(overrides={}):
    return overrides


def route(targets=set(), weights=list()):
    return targets, weights


def keyed(by=None, cache: dict | None = None, *, bins=dict()):
    return by, cache, bins
