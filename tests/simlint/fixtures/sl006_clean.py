"""SL006 fixture: None-then-materialize and immutable defaults."""


def track(request, seen: list | None = None) -> list:
    if seen is None:
        seen = []
    seen.append(request)
    return seen


def config(overrides: dict | None = None) -> dict:
    return dict(overrides or {})


def route(targets: tuple = (), weight: float = 1.0):
    return targets, weight
