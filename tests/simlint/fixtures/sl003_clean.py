"""SL003 fixture: sets used safely (membership, sorted, order-free folds)."""


class ReplicaBook:
    def __init__(self) -> None:
        self.active_ids: set[int] = set()

    def drain_order(self) -> list[int]:
        # sorted() makes the order part of the contract.
        return sorted(self.active_ids)

    def is_active(self, request_id: int) -> bool:
        # membership tests never observe iteration order.
        return request_id in self.active_ids

    def any_overdue(self, deadlines: dict[int, float], now_s: float) -> bool:
        # any() is order-insensitive.
        return any(deadlines[i] < now_s for i in self.active_ids)

    def count(self) -> int:
        return len(self.active_ids)


def tenants_of(requests) -> tuple[str, ...]:
    return tuple(sorted({r.tenant for r in requests}))


def ordered_dict_walk(table: dict[int, float]) -> list[float]:
    # dicts iterate in insertion order — deterministic, not flagged.
    return [table[key] for key in table]
