"""SL004 fixture: heap entries that break ties on payload contents."""

import heapq


def push_due(heap, when_s: float, request) -> None:
    # two requests due at the same instant compare on `request`.
    heapq.heappush(heap, (when_s, request))


def push_bare(heap, when_s: float) -> None:
    heapq.heappush(heap, (when_s,))
