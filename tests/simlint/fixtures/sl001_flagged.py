"""SL001 fixture: every form of undisciplined RNG construction/use."""

import random

import numpy as np


def midstream_stream():
    # default_rng with no seed parameter in scope: a hidden stream.
    rng = np.random.default_rng(1234)
    return rng.integers(10)


def stdlib_random():
    return random.choice([1, 2, 3])


def legacy_global_sampler(seed):
    # even with a seed param, the legacy global samplers stay banned.
    np.random.seed(seed)
    return np.random.rand(3)


MODULE_LEVEL = np.random.default_rng(0)
