"""SL007 fixture: configuration arrives as explicit arguments."""

import os.path


def pick_workers(workers: int = 4) -> int:
    return workers


def artefact_path(output_dir: str, name: str) -> str:
    # os APIs that do not read the environment stay available.
    return os.path.join(output_dir, name)
