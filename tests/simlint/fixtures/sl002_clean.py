"""SL002 fixture: virtual-clock discipline (and non-clock time uses)."""

import time


def advance(now_s: float, stage_time_s: float) -> float:
    # simulation time comes in as data and goes out as data.
    return now_s + stage_time_s


def format_duration(seconds: float) -> str:
    # strftime on a *given* value reads no clock.
    epoch = time.struct_time((1970, 1, 1, 0, 0, 0, 3, 1, 0))
    return time.strftime("%H:%M:%S", epoch) if seconds == 0 else f"{seconds:.3f}s"
