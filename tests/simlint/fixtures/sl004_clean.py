"""SL004 fixture: the (time, seq, payload) shape and friends."""

import heapq


class Feed:
    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0

    def push(self, when_s: float, request) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when_s, self._seq, request))

    def push_ticket(self, when_s: float) -> None:
        # a bare (time, seq) ordering ticket carries its own tiebreaker.
        self._seq += 1
        heapq.heappush(self._heap, (when_s, self._seq))


def push_opaque(heap, entry) -> None:
    # opaque values are not judged lexically (the call sites that build
    # them are).
    heapq.heappush(heap, entry)
