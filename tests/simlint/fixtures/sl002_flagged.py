"""SL002 fixture: wall-clock reads in simulation code."""

import time
from datetime import datetime
from time import perf_counter


def stamp_report(report):
    return (report, time.time())


def measure(fn):
    start = perf_counter()
    fn()
    return perf_counter() - start


def label_run():
    return datetime.now().isoformat()
