"""Tests for model configurations against the paper's Table I."""

import pytest

from repro.errors import ConfigError
from repro.models.config import ModelConfig, glam, grok1, llama3_70b, mixtral, opt_66b, paper_models


class TestTable1Structure:
    def test_mixtral(self):
        m = mixtral()
        assert (m.n_layers, m.hidden, m.intermediate) == (32, 4096, 14336)
        assert (m.n_heads, m.group_degree, m.n_experts, m.top_k) == (32, 4, 8, 2)

    def test_glam(self):
        m = glam()
        assert (m.n_layers, m.hidden, m.intermediate) == (32, 4096, 16384)
        assert (m.n_heads, m.group_degree, m.n_experts, m.top_k) == (32, 1, 64, 2)

    def test_grok1(self):
        m = grok1()
        assert (m.n_layers, m.hidden, m.intermediate) == (64, 6144, 32768)
        assert (m.n_heads, m.group_degree, m.n_experts, m.top_k) == (48, 6, 8, 2)

    def test_opt(self):
        m = opt_66b()
        assert (m.n_layers, m.hidden, m.intermediate) == (64, 9216, 36864)
        assert (m.n_heads, m.group_degree) == (72, 1)
        assert not m.is_moe

    def test_llama3(self):
        m = llama3_70b()
        assert (m.n_layers, m.hidden, m.intermediate) == (80, 8192, 28672)
        assert (m.n_heads, m.group_degree) == (64, 8)
        assert not m.is_moe

    def test_all_heads_are_128_wide(self):
        for model in paper_models().values():
            assert model.d_head == 128


class TestParameterCounts:
    @pytest.mark.parametrize(
        ("key", "target_billions"),
        [("mixtral", 47), ("glam", 143), ("grok1", 314), ("opt", 66), ("llama3", 70)],
    )
    def test_total_params_match_advertised(self, key, target_billions):
        model = paper_models()[key]
        assert model.total_params / 1e9 == pytest.approx(target_billions, rel=0.02)

    def test_glam_alternates_moe_layers(self):
        m = glam()
        assert m.n_moe_layers == 16
        assert m.n_dense_ffn_layers == 16

    def test_all_moe_blocks_for_mixtral(self):
        m = mixtral()
        assert m.n_moe_layers == 32
        assert m.n_dense_ffn_layers == 0

    def test_dense_models_have_no_moe_layers(self):
        assert opt_66b().n_moe_layers == 0
        assert llama3_70b().n_moe_layers == 0

    def test_moe_weights_dominate_mixtral(self):
        # The paper: expert FFNs are the majority of MoE model weights.
        m = mixtral()
        moe_bytes = m.total_weight_bytes - m.non_expert_weight_bytes
        assert moe_bytes > 0.9 * m.total_weight_bytes


class TestKvSizing:
    def test_gqa_shrinks_kv_by_group_degree(self):
        gqa = mixtral()
        equivalent_mha = ModelConfig(
            name="mixtral-mha",
            n_layers=32,
            hidden=4096,
            intermediate=14336,
            n_heads=32,
            group_degree=1,
            n_experts=8,
            top_k=2,
            moe_layer_interval=1,
        )
        ratio = equivalent_mha.kv_bytes_per_token / gqa.kv_bytes_per_token
        assert ratio == pytest.approx(gqa.group_degree)

    def test_kv_bytes_per_token_mixtral(self):
        # 32 layers x 2 x 8 KV heads x 128 x 2 B = 128 KiB per token.
        assert mixtral().kv_bytes_per_token == 128 * 1024


class TestSharedExperts:
    """DeepSeekMoE-style always-on shared experts alongside top-k routing."""

    @staticmethod
    def _with_shared(n: int) -> ModelConfig:
        import dataclasses

        return dataclasses.replace(mixtral(), num_shared_experts=n)

    def test_default_is_zero(self):
        assert mixtral().num_shared_experts == 0
        assert mixtral().shared_expert_weight_bytes == 0.0

    def test_shared_experts_grow_params(self):
        base, shared = mixtral(), self._with_shared(2)
        grown = shared.total_params - base.total_params
        assert grown == base.n_moe_layers * 2 * base.expert_params

    def test_shared_expert_weight_bytes(self):
        shared = self._with_shared(2)
        assert shared.shared_expert_weight_bytes == pytest.approx(
            shared.n_moe_layers * 2 * shared.expert_bytes
        )

    def test_non_expert_bytes_exclude_shared_experts(self):
        # Shared experts are expert weights, not attention/FC weights.
        base, shared = mixtral(), self._with_shared(2)
        assert shared.non_expert_weight_bytes == pytest.approx(base.non_expert_weight_bytes)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            self._with_shared(-1)

    def test_rejects_shared_experts_on_dense_model(self):
        import dataclasses

        with pytest.raises(ConfigError):
            dataclasses.replace(llama3_70b(), num_shared_experts=1)


class TestValidation:
    def test_rejects_head_mismatch(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad", n_layers=2, hidden=100, intermediate=400, n_heads=3,
                group_degree=1, n_experts=0, top_k=0, moe_layer_interval=0,
            )

    def test_rejects_group_degree_not_dividing_heads(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad", n_layers=2, hidden=128, intermediate=512, n_heads=8,
                group_degree=3, n_experts=0, top_k=0, moe_layer_interval=0,
            )

    def test_rejects_topk_above_experts(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad", n_layers=2, hidden=128, intermediate=512, n_heads=8,
                group_degree=1, n_experts=4, top_k=5, moe_layer_interval=1,
            )

    def test_rejects_dense_model_with_moe_interval(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad", n_layers=2, hidden=128, intermediate=512, n_heads=8,
                group_degree=1, n_experts=0, top_k=0, moe_layer_interval=1,
            )

    def test_rejects_bad_ffn_matrices(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad", n_layers=2, hidden=128, intermediate=512, n_heads=8,
                group_degree=1, n_experts=0, top_k=0, moe_layer_interval=0, ffn_matrices=4,
            )
