"""Tests for the operator descriptor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.models.ops import OpCategory, Operator


def make_op(flops=100.0, read=10.0, written=0.0, category=OpCategory.FC):
    return Operator("op", category, flops, read, written)


class TestOpb:
    def test_opb_is_flops_per_byte(self):
        assert make_op(flops=100, read=10).opb == pytest.approx(10.0)

    def test_writes_count_in_opb(self):
        assert make_op(flops=100, read=10, written=10).opb == pytest.approx(5.0)

    def test_pure_compute_is_infinite(self):
        assert make_op(flops=1, read=0).opb == float("inf")

    def test_empty_op_is_zero(self):
        assert make_op(flops=0, read=0).opb == 0.0


class TestScaling:
    @given(factor=st.floats(0.0, 64.0))
    def test_scaled_preserves_opb(self, factor):
        op = make_op(flops=100, read=10, written=5)
        scaled = op.scaled(factor)
        assert scaled.flops == pytest.approx(op.flops * factor)
        if factor > 0:
            assert scaled.opb == pytest.approx(op.opb)

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigError):
            make_op().scaled(-1.0)


class TestMerging:
    def test_merge_sums_components(self):
        merged = make_op(flops=10, read=1).merged_with(make_op(flops=20, read=2, written=3))
        assert merged.flops == 30
        assert merged.bytes_read == 3
        assert merged.bytes_written == 3

    def test_merge_across_categories_rejected(self):
        fc = make_op(category=OpCategory.FC)
        moe = make_op(category=OpCategory.MOE)
        with pytest.raises(ConfigError):
            fc.merged_with(moe)

    def test_negative_components_rejected(self):
        with pytest.raises(ConfigError):
            Operator("bad", OpCategory.FC, -1.0, 0.0)
