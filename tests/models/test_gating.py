"""Tests for expert routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.models.gating import ExpertRouter


class TestUniformRouting:
    def test_counts_conserve_assignments(self):
        router = ExpertRouter(n_experts=8, top_k=2, seed=7)
        counts = router.route(32)
        assert counts.sum() == 64

    def test_zero_tokens_gives_zeros(self):
        router = ExpertRouter(n_experts=8, top_k=2)
        assert router.route(0).sum() == 0

    def test_uniform_probabilities(self):
        router = ExpertRouter(n_experts=8, top_k=2)
        assert np.allclose(router.probabilities, 1 / 8)

    def test_expected_counts(self):
        router = ExpertRouter(n_experts=8, top_k=2)
        assert np.allclose(router.expected_counts(32), 8.0)

    def test_seed_reproducibility(self):
        a = ExpertRouter(n_experts=8, top_k=2, seed=11).route(100)
        b = ExpertRouter(n_experts=8, top_k=2, seed=11).route(100)
        assert (a == b).all()

    def test_large_sample_looks_uniform(self):
        router = ExpertRouter(n_experts=8, top_k=2, seed=3)
        counts = router.route(100_000)
        assert counts.min() > 0.9 * counts.mean()
        assert counts.max() < 1.1 * counts.mean()


class TestSkewedRouting:
    def test_skew_concentrates_on_first_experts(self):
        hot = ExpertRouter(n_experts=8, top_k=2, skew=1.5, seed=5)
        counts = hot.route(100_000)
        assert counts[0] > 3 * counts[-1]

    def test_probabilities_monotone_under_skew(self):
        probs = ExpertRouter(n_experts=8, top_k=2, skew=1.0).probabilities
        assert (np.diff(probs) <= 0).all()

    def test_skew_still_conserves_assignments(self):
        router = ExpertRouter(n_experts=16, top_k=2, skew=2.0, seed=1)
        assert router.route(500).sum() == 1000


class TestValidation:
    def test_rejects_zero_experts(self):
        with pytest.raises(ConfigError):
            ExpertRouter(n_experts=0, top_k=1)

    def test_rejects_bad_topk(self):
        with pytest.raises(ConfigError):
            ExpertRouter(n_experts=4, top_k=5)

    def test_rejects_negative_skew(self):
        with pytest.raises(ConfigError):
            ExpertRouter(n_experts=4, top_k=1, skew=-1.0)

    def test_rejects_negative_tokens(self):
        with pytest.raises(ConfigError):
            ExpertRouter(n_experts=4, top_k=1).route(-5)


class TestConservationProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        n_experts=st.integers(2, 64),
        n_tokens=st.integers(0, 4096),
        skew=st.floats(0.0, 3.0),
    )
    def test_counts_always_sum_to_tokens_times_topk(self, n_experts, n_tokens, skew):
        top_k = min(2, n_experts)
        router = ExpertRouter(n_experts=n_experts, top_k=top_k, skew=skew, seed=0)
        assert router.route(n_tokens).sum() == n_tokens * top_k
