"""Tests for the closed-form layer math.

The key assertions mirror the paper's Section III analysis: decode attention
sits at Op/B ~ deggrp, MoE experts at Op/B ~ routed token count, FC layers
at Op/B ~ batch size, prefill attention high.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.models.config import glam, mixtral, opt_66b
from repro.models.layers import DeviceShard, LayerMath
from repro.models.ops import OpCategory


@pytest.fixture(scope="module")
def mixtral_math():
    return LayerMath(mixtral())


class TestDeviceShard:
    def test_defaults_are_full(self):
        shard = DeviceShard()
        assert shard.fc_fraction == shard.expert_fraction == shard.kv_fraction == 1.0

    @pytest.mark.parametrize("field", ["fc_fraction", "expert_fraction", "kv_fraction"])
    def test_rejects_zero_or_above_one(self, field):
        with pytest.raises(ConfigError):
            DeviceShard(**{field: 0.0})
        with pytest.raises(ConfigError):
            DeviceShard(**{field: 1.5})


class TestAttentionDecode:
    def test_opb_tracks_group_degree(self, mixtral_math):
        op = mixtral_math.attention_decode(np.full(32, 2048))
        assert op.opb == pytest.approx(mixtral().group_degree, rel=0.05)

    def test_mha_opb_near_one(self):
        op = LayerMath(glam()).attention_decode(np.full(32, 2048))
        assert op.opb == pytest.approx(1.0, rel=0.05)

    def test_opb_independent_of_context_length(self, mixtral_math):
        short = mixtral_math.attention_decode(np.full(16, 256))
        long = mixtral_math.attention_decode(np.full(16, 8192))
        assert short.opb == pytest.approx(long.opb, rel=0.05)

    def test_bytes_scale_with_context(self, mixtral_math):
        short = mixtral_math.attention_decode(np.full(16, 1024))
        long = mixtral_math.attention_decode(np.full(16, 4096))
        assert long.bytes_read == pytest.approx(4 * short.bytes_read, rel=0.02)

    def test_empty_batch_is_free(self, mixtral_math):
        op = mixtral_math.attention_decode(np.array([]))
        assert op.flops == 0 and op.total_bytes == 0

    def test_kv_fraction_scales_everything(self, mixtral_math):
        full = mixtral_math.attention_decode(np.full(8, 1024), kv_fraction=1.0)
        quarter = mixtral_math.attention_decode(np.full(8, 1024), kv_fraction=0.25)
        assert quarter.flops == pytest.approx(full.flops / 4)
        assert quarter.bytes_read == pytest.approx(full.bytes_read / 4)

    def test_negative_context_rejected(self, mixtral_math):
        with pytest.raises(ConfigError):
            mixtral_math.attention_decode(np.array([10, -1]))


class TestAttentionPrefill:
    def test_high_opb(self, mixtral_math):
        op = mixtral_math.attention_prefill([2048])
        assert op.opb > 100

    def test_quadratic_flops(self, mixtral_math):
        small = mixtral_math.attention_prefill([1024])
        large = mixtral_math.attention_prefill([2048])
        assert large.flops == pytest.approx(4 * small.flops, rel=0.01)

    def test_multiple_requests_sum(self, mixtral_math):
        two = mixtral_math.attention_prefill([1024, 1024])
        one = mixtral_math.attention_prefill([1024])
        assert two.flops == pytest.approx(2 * one.flops)

    def test_zero_length_skipped(self, mixtral_math):
        assert mixtral_math.attention_prefill([0]).flops == 0


class TestMoE:
    def test_expert_opb_equals_token_count(self, mixtral_math):
        # The Section III identity: expert Op/B ~ tokens routed to it.
        for tokens in (1, 8, 32):
            op = mixtral_math.expert_ffn(0, tokens)
            assert op.opb == pytest.approx(tokens, rel=0.1)

    def test_zero_token_expert_is_free(self, mixtral_math):
        op = mixtral_math.expert_ffn(0, 0)
        assert op.flops == 0 and op.total_bytes == 0

    def test_expert_fraction_shards_weights(self, mixtral_math):
        full = mixtral_math.expert_ffn(0, 16, expert_fraction=1.0)
        quarter = mixtral_math.expert_ffn(0, 16, expert_fraction=0.25)
        assert quarter.flops == pytest.approx(full.flops / 4, rel=0.01)

    def test_expert_ffns_skips_empty(self, mixtral_math):
        ops = mixtral_math.expert_ffns(np.array([4, 0, 2, 0, 0, 0, 0, 1]))
        assert len(ops) == 3

    def test_expert_ffns_accepts_dict(self, mixtral_math):
        ops = mixtral_math.expert_ffns({3: 5, 6: 0, 7: 2})
        assert [op.name for op in ops] == ["expert[3]", "expert[7]"]

    def test_gate_on_dense_model_rejected(self):
        with pytest.raises(ConfigError):
            LayerMath(opt_66b()).gate(16)

    def test_gate_category_is_moe(self, mixtral_math):
        assert mixtral_math.gate(16).category is OpCategory.MOE


class TestFcLayers:
    def test_qkv_opb_tracks_batch(self, mixtral_math):
        small = mixtral_math.qkv_and_projection(8)
        large = mixtral_math.qkv_and_projection(64)
        assert large.opb > 4 * small.opb

    def test_fc_fraction_shards_weights(self, mixtral_math):
        full = mixtral_math.qkv_and_projection(32, fc_fraction=1.0)
        quarter = mixtral_math.qkv_and_projection(32, fc_fraction=0.25)
        assert quarter.flops == pytest.approx(full.flops / 4)

    def test_dense_ffn_matches_expert_shape(self):
        math_opt = LayerMath(opt_66b())
        ffn = math_opt.dense_ffn(16)
        assert ffn.flops == pytest.approx(2 * 16 * opt_66b().dense_ffn_params, rel=0.01)

    def test_lm_head_reads_vocab_weights(self, mixtral_math):
        op = mixtral_math.lm_head(32)
        expected = mixtral().vocab_size * mixtral().hidden * 2
        assert op.bytes_read > expected

    def test_embedding_has_no_flops(self, mixtral_math):
        assert mixtral_math.embedding(32).flops == 0

    def test_negative_tokens_rejected(self, mixtral_math):
        with pytest.raises(ConfigError):
            mixtral_math.qkv_and_projection(-1)


class TestScalingProperties:
    @settings(max_examples=20, deadline=None)
    @given(tokens=st.integers(1, 512), factor=st.integers(2, 8))
    def test_fc_flops_linear_in_tokens(self, tokens, factor):
        math = LayerMath(mixtral())
        base = math.qkv_and_projection(tokens)
        scaled = math.qkv_and_projection(tokens * factor)
        assert scaled.flops == pytest.approx(base.flops * factor, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(tokens=st.integers(1, 64))
    def test_expert_weight_bytes_independent_of_tokens(self, tokens):
        math = LayerMath(mixtral())
        weights = mixtral().expert_bytes
        op = math.expert_ffn(0, tokens)
        activation_bytes = op.total_bytes - weights
        assert 0 < activation_bytes < 0.2 * weights
