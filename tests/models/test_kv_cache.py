"""Tests for KV-cache sizing."""

import pytest

from repro.errors import ConfigError
from repro.models.config import mixtral, opt_66b
from repro.models.kv_cache import kv_bytes_per_token, max_resident_tokens, request_kv_bytes
from repro.units import GiB


class TestSizing:
    def test_request_bytes_linear_in_length(self):
        m = mixtral()
        assert request_kv_bytes(m, 2048) == pytest.approx(2 * request_kv_bytes(m, 1024))

    def test_mha_model_has_heavier_kv(self):
        assert kv_bytes_per_token(opt_66b()) > kv_bytes_per_token(mixtral())

    def test_zero_length_request(self):
        assert request_kv_bytes(mixtral(), 0) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigError):
            request_kv_bytes(mixtral(), -1)


class TestCapacity:
    def test_max_resident_tokens(self):
        m = mixtral()
        tokens = max_resident_tokens(m, 10 * GiB)
        assert tokens == int(10 * GiB // m.kv_bytes_per_token)

    def test_no_free_bytes_means_no_tokens(self):
        assert max_resident_tokens(mixtral(), 0) == 0
        assert max_resident_tokens(mixtral(), -5) == 0
