"""Tests for the EDAP study."""

import pytest

from repro.analysis.edap import best_architecture, edap_study
from repro.errors import ConfigError
from repro.hardware.processor import UnitKind


@pytest.fixture(scope="module")
def study():
    return edap_study()


class TestStudyStructure:
    def test_all_opbs_present(self, study):
        assert sorted(study) == [1, 2, 4, 8, 16, 32]

    def test_three_architectures_per_column(self, study):
        for points in study.values():
            assert {p.kind for p in points} == {
                UnitKind.BANK_PIM,
                UnitKind.BANKGROUP_PIM,
                UnitKind.LOGIC_PIM,
            }

    def test_normalized_max_is_one(self, study):
        for points in study.values():
            assert max(p.normalized for p in points) == pytest.approx(1.0)

    def test_edap_is_product(self, study):
        for points in study.values():
            for p in points:
                assert p.edap == pytest.approx(p.energy_j * p.delay_s * p.area_mm2)


class TestPaperShape:
    def test_bank_pim_best_at_low_opb(self, study):
        for opb in (1, 2, 4):
            assert best_architecture(study[opb]) is UnitKind.BANK_PIM

    def test_logic_pim_best_from_eight(self, study):
        for opb in (8, 16, 32):
            assert best_architecture(study[opb]) is UnitKind.LOGIC_PIM

    def test_bankgroup_never_beats_logic(self, study):
        for points in study.values():
            values = {p.kind: p.edap for p in points}
            assert values[UnitKind.BANKGROUP_PIM] >= values[UnitKind.LOGIC_PIM]

    def test_bank_pim_delay_grows_linearly_beyond_ridge(self, study):
        d8 = next(p for p in study[8] if p.kind is UnitKind.BANK_PIM).delay_s
        d32 = next(p for p in study[32] if p.kind is UnitKind.BANK_PIM).delay_s
        assert d32 == pytest.approx(4 * d8, rel=0.1)


class TestValidation:
    def test_empty_opbs_rejected(self):
        with pytest.raises(ConfigError):
            edap_study(opbs=())

    def test_zero_opb_rejected(self):
        with pytest.raises(ConfigError):
            edap_study(opbs=(0,))

    def test_best_of_nothing_rejected(self):
        with pytest.raises(ConfigError):
            best_architecture([])
