"""Tests for Fig. 4(b) roofline data."""

import pytest

from repro.analysis.roofline import decode_stage_roofline
from repro.hardware.specs import h100_xpu
from repro.models.config import glam, llama3_70b, mixtral


@pytest.fixture(scope="module")
def mixtral_points():
    return {p.label: p for p in decode_stage_roofline(mixtral())}


class TestAttentionSeries:
    def test_opb_pinned_at_group_degree(self, mixtral_points):
        for batch in (32, 64, 128):
            point = mixtral_points[f"Attention @ batch {batch}"]
            assert point.opb == pytest.approx(mixtral().group_degree, rel=0.2)

    def test_mha_attention_opb_near_one(self):
        points = {p.label: p for p in decode_stage_roofline(glam())}
        assert points["Attention @ batch 64"].opb == pytest.approx(1.0, rel=0.2)

    def test_attention_always_memory_bound(self, mixtral_points):
        for batch in (32, 64, 128):
            assert mixtral_points[f"Attention @ batch {batch}"].memory_bound


class TestMoESeries:
    def test_moe_opb_grows_with_batch(self, mixtral_points):
        opbs = [mixtral_points[f"MoE @ batch {b}"].opb for b in (32, 64, 128)]
        assert opbs == sorted(opbs)
        assert opbs[0] > 1.0

    def test_moe_utilization_low(self, mixtral_points):
        # Section III: compute utilisation under 11% for the MoE layer.
        unit = h100_xpu()
        for batch in (32, 64, 128):
            point = mixtral_points[f"MoE @ batch {batch}"]
            assert point.achieved_tflops * 1e12 / unit.peak_flops < 0.11


class TestFcSeries:
    def test_fc_opb_scales_with_batch(self, mixtral_points):
        small = mixtral_points["FC @ batch 32"].opb
        large = mixtral_points["FC @ batch 128"].opb
        assert large > 2.5 * small

    def test_dense_model_has_ffn_series(self):
        points = {p.label for p in decode_stage_roofline(llama3_70b())}
        assert "FFN @ batch 64" in points
        assert not any(label.startswith("MoE") for label in points)
