"""Tests for table rendering and normalisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.report import format_table, normalize
from repro.errors import ConfigError


class TestNormalize:
    def test_default_baseline_is_first(self):
        assert normalize([2.0, 4.0, 8.0]) == [1.0, 2.0, 4.0]

    def test_explicit_baseline(self):
        assert normalize([2.0, 4.0], baseline=4.0) == [0.5, 1.0]

    def test_empty_ok(self):
        assert normalize([]) == []

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigError):
            normalize([0.0, 1.0])

    @given(values=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=20))
    def test_first_is_always_one(self, values):
        assert normalize(values)[0] == pytest.approx(1.0)


class TestFormatTable:
    def test_headers_and_rows_render(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_column_alignment(self):
        text = format_table(["col"], [[1], [22], [333]])
        rows = text.splitlines()[2:]
        assert all(len(row) == len(rows[0]) for row in rows)

    def test_mismatched_row_rejected(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [[1]])

    def test_floats_formatted_to_three_decimals(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.235" in text

    def test_large_floats_one_decimal(self):
        text = format_table(["v"], [[12345.678]])
        assert "12345.7" in text
