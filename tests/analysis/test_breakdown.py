"""Tests for representative-stage breakdowns."""

import pytest

from repro.analysis.breakdown import (
    representative_stage,
    stage_energy_breakdown,
    stage_time_shares,
)
from repro.core.system import duplex_system, gpu_system
from repro.errors import ConfigError
from repro.models.config import mixtral
from repro.models.ops import OpCategory


class TestRepresentativeStage:
    def test_decode_stage_shape(self):
        stage = representative_stage(batch=32, lin=2048, lout=1024, mixed=False)
        assert stage.n_decode == 32
        assert not stage.is_mixed
        assert int(stage.decode_context_lengths[0]) == 2048 + 512

    def test_mixed_stage_swaps_one_decode(self):
        stage = representative_stage(batch=32, lin=2048, lout=1024, mixed=True)
        assert stage.n_decode == 31
        assert stage.prefill_lengths == (2048,)

    def test_zero_batch_rejected(self):
        with pytest.raises(ConfigError):
            representative_stage(batch=0, lin=128, lout=128, mixed=False)


class TestTimeShares:
    def test_shares_sum_to_one(self):
        shares = stage_time_shares(gpu_system(mixtral()), mixtral(), 32, 2048, 1024, False)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_moe_dominates_gpu_decode(self):
        shares = stage_time_shares(gpu_system(mixtral()), mixtral(), 32, 2048, 1024, False)
        assert shares[OpCategory.MOE] > 0.5

    def test_mixed_stage_has_prefill_attention(self):
        shares = stage_time_shares(gpu_system(mixtral()), mixtral(), 32, 2048, 1024, True)
        assert shares.get(OpCategory.ATTENTION_PREFILL, 0.0) > 0


class TestEnergyBreakdown:
    def test_components_cover_total(self):
        result, split = stage_energy_breakdown(
            gpu_system(mixtral()), mixtral(), 32, 1024, 1024, False
        )
        assert sum(split.values()) == pytest.approx(result.energy_j)

    def test_duplex_cuts_moe_dram_energy(self):
        _, gpu = stage_energy_breakdown(gpu_system(mixtral()), mixtral(), 32, 1024, 1024, False)
        _, duplex = stage_energy_breakdown(
            duplex_system(mixtral()), mixtral(), 32, 1024, 1024, False
        )
        assert duplex["moe:dram"] < 0.75 * gpu["moe:dram"]
