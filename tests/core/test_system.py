"""Tests for system configurations and capacity accounting."""

import pytest

from repro.core.system import (
    SystemKind,
    bank_pim_system,
    default_topology,
    duplex_system,
    gpu_system,
    hetero_system,
)
from repro.errors import ConfigError
from repro.models.config import glam, grok1, llama3_70b, mixtral, opt_66b
from repro.parallel.placement import ExpertPlacement


class TestDefaultTopology:
    @pytest.mark.parametrize(
        ("model", "nodes", "devices"),
        [
            (mixtral(), 1, 4),
            (glam(), 1, 8),
            (grok1(), 2, 8),
            (opt_66b(), 1, 4),
            (llama3_70b(), 1, 4),
        ],
    )
    def test_paper_deployments(self, model, nodes, devices):
        topo = default_topology(model)
        assert (topo.n_nodes, topo.devices_per_node) == (nodes, devices)


class TestFactories:
    def test_gpu_names(self):
        assert gpu_system(mixtral()).name == "GPU"
        assert gpu_system(mixtral(), doubled=True).name == "2xGPU"

    def test_doubled_gpu_has_twice_the_devices(self):
        assert gpu_system(mixtral(), doubled=True).topology.n_devices == 8

    def test_duplex_variants(self):
        assert duplex_system(mixtral()).name == "Duplex"
        assert duplex_system(mixtral(), co_processing=True).name == "Duplex+PE"
        full = duplex_system(mixtral(), co_processing=True, expert_tensor_parallel=True)
        assert full.name == "Duplex+PE+ET"
        assert full.expert_placement is ExpertPlacement.EXPERT_TENSOR_PARALLEL

    def test_et_requires_pe(self):
        with pytest.raises(ConfigError):
            duplex_system(mixtral(), co_processing=False, expert_tensor_parallel=True)

    def test_bank_pim_device(self):
        system = bank_pim_system(mixtral())
        assert system.device.pim is not None
        assert "Bank-PIM" in system.device.pim.name

    def test_hetero_splits_devices(self):
        system = hetero_system(mixtral())
        assert system.kind is SystemKind.HETERO
        assert system.hetero_gpu_count == 2
        assert system.hetero_pim_count == 2

    def test_hetero_on_multi_node_model_rejected(self):
        with pytest.raises(ConfigError):
            hetero_system(grok1())


class TestMemoryProfiles:
    def test_homogeneous_profile_is_uniform(self):
        profiles = gpu_system(mixtral()).memory_profiles(mixtral())
        assert len(profiles) == 1
        assert profiles[0].count == 4

    def test_hetero_concentrates_kv_on_pim(self):
        profiles = hetero_system(mixtral()).memory_profiles(mixtral())
        by_name = {p.name: p for p in profiles}
        assert by_name["GPU"].kv_bytes_per_token == 0.0
        assert by_name["PIM-only"].kv_bytes_per_token > 0.0

    def test_hetero_pim_devices_carry_all_experts(self):
        model = mixtral()
        profiles = hetero_system(model).memory_profiles(model)
        pim = next(p for p in profiles if p.name == "PIM-only")
        experts_total = model.n_moe_layers * model.n_experts * model.expert_bytes
        assert pim.weight_bytes == pytest.approx(experts_total / 2)


class TestBatchCapacity:
    def test_gpu_fits_batch_128_at_moderate_lengths(self):
        system = gpu_system(mixtral())
        assert system.max_batch_for(mixtral(), max_seq_len=4096) >= 128

    def test_hetero_holds_fewer_requests_than_gpu(self):
        # Fig. 5(c): the hetero system's KV lives on half the devices.
        model = mixtral()
        seq = 8192 + 4096
        assert hetero_system(model).max_batch_for(model, seq) < gpu_system(model).max_batch_for(
            model, seq
        )

    def test_longer_sequences_shrink_batch(self):
        system = gpu_system(mixtral())
        short = system.max_batch_for(mixtral(), 2048)
        long = system.max_batch_for(mixtral(), 8192)
        assert long < short

    def test_zero_seq_rejected(self):
        with pytest.raises(ConfigError):
            gpu_system(mixtral()).max_batch_for(mixtral(), 0)

    def test_grok1_two_nodes_scale_batch(self):
        # Data parallelism doubles the cluster-level batch limit.
        system = gpu_system(grok1())
        per_node_equivalent = duplex_system(grok1()).max_batch_for(grok1(), 4096)
        assert system.max_batch_for(grok1(), 4096) == per_node_equivalent
