"""Tests for expert co-processing (lookup table + greedy assignment)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coprocessing import (
    ExpertTimeLookup,
    assign_experts,
    round_robin_space_groups,
)
from repro.errors import ConfigError
from repro.hardware.specs import h100_xpu, logic_pim_unit
from repro.models.config import mixtral
from repro.models.layers import LayerMath


@pytest.fixture(scope="module")
def lookup():
    return ExpertTimeLookup(LayerMath(mixtral()), h100_xpu(), logic_pim_unit())


class TestLookup:
    def test_caches_results(self, lookup):
        first = lookup.pim_time(8)
        assert lookup.pim_time(8) == first
        assert 8 in lookup._pim_cache

    def test_pim_faster_at_low_tokens(self, lookup):
        # Few tokens = low Op/B = Logic-PIM territory.
        assert lookup.pim_time(4) < lookup.xpu_time(4)

    def test_xpu_faster_at_high_tokens(self, lookup):
        # Thousands of tokens = compute-bound = xPU territory.
        assert lookup.xpu_time(8192) < lookup.pim_time(8192)

    def test_times_monotone_in_tokens(self, lookup):
        xpu_times = [lookup.xpu_time(t) for t in (1, 16, 256, 4096)]
        pim_times = [lookup.pim_time(t) for t in (1, 16, 256, 4096)]
        assert xpu_times == sorted(xpu_times)
        assert pim_times == sorted(pim_times)


class TestGreedyAssignment:
    def test_never_worse_than_single_unit(self, lookup):
        counts = np.array([3, 9, 14, 2, 8, 8, 11, 9])
        assignment = assign_experts(counts, lookup)
        all_xpu = sum(lookup.xpu_time(int(t)) for t in counts)
        all_pim = sum(lookup.pim_time(int(t)) for t in counts)
        assert assignment.makespan_s <= min(all_xpu, all_pim) + 1e-12

    def test_uniform_low_counts_mostly_on_pim(self, lookup):
        # Decode-stage counts: Logic-PIM keeps the majority; the xPU takes a
        # small share (its bandwidth is ~1/4 of Logic-PIM's) to cut the
        # makespan below the all-PIM time.
        counts = np.full(8, 8)
        assignment = assign_experts(counts, lookup)
        all_pim = sum(lookup.pim_time(8) for _ in range(8))
        assert len(assignment.xpu_experts) <= 2
        assert len(assignment.pim_experts) >= 6
        assert assignment.makespan_s < all_pim

    def test_heavy_experts_go_to_xpu(self, lookup):
        # A mixed stage: one expert swallows most of the prefill.
        counts = np.array([4000, 30, 20, 25, 30, 15, 20, 25])
        assignment = assign_experts(counts, lookup)
        assert 0 in assignment.xpu_experts

    def test_partition_is_complete_and_disjoint(self, lookup):
        counts = np.array([5, 100, 7, 2000, 3, 60, 11, 9])
        assignment = assign_experts(counts, lookup)
        combined = sorted(assignment.xpu_experts + assignment.pim_experts)
        assert combined == list(range(8))

    def test_makespan_is_max_of_sides(self, lookup):
        counts = np.array([500, 40, 8, 8])
        assignment = assign_experts(counts, lookup)
        assert assignment.makespan_s == pytest.approx(
            max(assignment.xpu_time_s, assignment.pim_time_s)
        )

    def test_zero_count_experts_cost_nothing(self, lookup):
        counts = np.array([0, 0, 0, 0])
        assignment = assign_experts(counts, lookup)
        assert assignment.makespan_s == 0.0

    @settings(max_examples=25, deadline=None)
    @given(counts=st.lists(st.integers(0, 5000), min_size=2, max_size=16))
    def test_greedy_beats_or_ties_single_unit(self, lookup, counts):
        arr = np.array(counts)
        assignment = assign_experts(arr, lookup)
        all_xpu = sum(lookup.xpu_time(int(t)) for t in arr if t > 0)
        all_pim = sum(lookup.pim_time(int(t)) for t in arr if t > 0)
        assert assignment.makespan_s <= min(all_xpu, all_pim) + 1e-12


class TestSpaceGranularity:
    def test_groups_move_together(self, lookup):
        counts = np.array([4000, 10, 10, 10, 4000, 10, 10, 10])
        groups = round_robin_space_groups(8, 4)  # [[0,4],[1,5],[2,6],[3,7]]
        assignment = assign_experts(counts, lookup, groups)
        # Experts 0 and 4 share a space: both on the same side.
        assert (0 in assignment.xpu_experts) == (4 in assignment.xpu_experts)

    def test_space_constraint_cannot_beat_free_assignment(self, lookup):
        counts = np.array([4000, 10, 10, 10, 15, 10, 10, 10])
        free = assign_experts(counts, lookup)
        spaced = assign_experts(counts, lookup, round_robin_space_groups(8, 4))
        assert spaced.makespan_s >= free.makespan_s - 1e-12

    def test_bad_groups_rejected(self, lookup):
        with pytest.raises(ConfigError):
            assign_experts(np.array([1, 2, 3]), lookup, [[0, 1]])  # missing expert 2

    def test_round_robin_groups_cover_all(self):
        groups = round_robin_space_groups(10, 4)
        assert sorted(i for g in groups for i in g) == list(range(10))

    def test_fewer_experts_than_spaces(self):
        groups = round_robin_space_groups(2, 4)
        assert groups == [[0], [1]]


class TestValidation:
    def test_rejects_negative_counts(self, lookup):
        with pytest.raises(ConfigError):
            assign_experts(np.array([-1, 2]), lookup)

    def test_rejects_2d_counts(self, lookup):
        with pytest.raises(ConfigError):
            assign_experts(np.zeros((2, 2)), lookup)
