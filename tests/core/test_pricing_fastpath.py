"""Property tests: the vectorized pricing fast path is bit-exact.

The golden snapshots (tests/golden) pin the end-to-end serving stack
byte-for-byte; these tests pin the *mechanism* — every vectorized pricing
primitive must reproduce its retained scalar reference bit-for-bit, for
randomized inputs far beyond what the goldens exercise:

* :meth:`LayerMath.attention_prefill` vs :func:`attention_prefill_reference`
  (the pre-vectorization per-request loop);
* :meth:`LayerMath.expert_ffn_arrays` vs per-expert :meth:`LayerMath.expert_ffn`;
* :meth:`ProcessingUnit.op_times` / energy batches vs the scalar calls;
* :func:`assign_experts` (stable argsort + seeded cumulative sums, with the
  scalar small-count path) vs :func:`assign_experts_reference` (the
  original iterative greedy), with and without memory-space groups.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.coprocessing import (  # noqa: E402
    ExpertTimeLookup,
    assign_experts,
    assign_experts_reference,
    round_robin_space_groups,
)
from repro.hardware.specs import h100_xpu, logic_pim_unit  # noqa: E402
from repro.models.config import glam, mixtral  # noqa: E402
from repro.models.layers import LayerMath, attention_prefill_reference  # noqa: E402

MODELS = {"mixtral": mixtral(), "glam": glam()}
FRACTIONS = (1.0, 0.5, 0.25, 1.0 / 3.0, 0.125)

lengths_strategy = st.lists(st.integers(0, 8192), min_size=1, max_size=12)
counts_strategy = st.lists(st.integers(0, 8000), min_size=1, max_size=70)


@settings(max_examples=60, deadline=None)
@given(
    model_key=st.sampled_from(sorted(MODELS)),
    lengths=lengths_strategy,
    contexts=st.lists(st.integers(0, 8192), min_size=12, max_size=12),
    kv_fraction=st.sampled_from(FRACTIONS),
    with_contexts=st.booleans(),
)
def test_attention_prefill_matches_scalar_reference(
    model_key, lengths, contexts, kv_fraction, with_contexts
):
    math = LayerMath(MODELS[model_key])
    ctx = contexts[: len(lengths)] if with_contexts else None
    vectorized = math.attention_prefill(lengths, kv_fraction, ctx)
    reference = attention_prefill_reference(math, lengths, kv_fraction, ctx)
    assert vectorized.flops == reference.flops
    assert vectorized.bytes_read == reference.bytes_read
    assert vectorized.bytes_written == reference.bytes_written


@settings(max_examples=60, deadline=None)
@given(
    model_key=st.sampled_from(sorted(MODELS)),
    counts=counts_strategy,
    fraction=st.sampled_from(FRACTIONS),
)
def test_expert_ffn_arrays_match_scalar_operators(model_key, counts, fraction):
    math = LayerMath(MODELS[model_key])
    flops, bytes_read, bytes_written = math.expert_ffn_arrays(counts, fraction)
    for index, tokens in enumerate(counts):
        op = math.expert_ffn(index, tokens, fraction)
        assert flops[index] == op.flops
        assert bytes_read[index] == op.bytes_read
        assert bytes_written[index] == op.bytes_written


@settings(max_examples=60, deadline=None)
@given(
    counts=counts_strategy,
    fraction=st.sampled_from(FRACTIONS),
    unit_key=st.sampled_from(("xpu", "pim")),
)
def test_op_time_and_energy_batches_match_scalar(counts, fraction, unit_key):
    math = LayerMath(MODELS["mixtral"])
    unit = h100_xpu() if unit_key == "xpu" else logic_pim_unit()
    flops, bytes_read, bytes_written = math.expert_ffn_arrays(counts, fraction)
    times = unit.op_times(flops, bytes_read, bytes_written)
    dram = unit.dram_energies(bytes_read, bytes_written)
    compute = unit.compute_energies(flops)
    for i in range(len(counts)):
        assert times[i] == unit.op_time(float(flops[i]), float(bytes_read[i]), float(bytes_written[i]))
        assert dram[i] == unit.dram_energy(float(bytes_read[i]), float(bytes_written[i]))
        assert compute[i] == unit.compute_energy(float(flops[i]))


@settings(max_examples=80, deadline=None)
@given(
    model_key=st.sampled_from(sorted(MODELS)),
    counts=counts_strategy,
    fraction=st.sampled_from((1.0, 0.25)),
    spaces=st.integers(0, 7),
)
def test_greedy_assignment_matches_iterative_reference(model_key, counts, fraction, spaces):
    lookup = ExpertTimeLookup(
        LayerMath(MODELS[model_key]), h100_xpu(), logic_pim_unit(), fraction
    )
    groups = round_robin_space_groups(len(counts), spaces) if spaces > 0 else None
    arr = np.asarray(counts, dtype=np.int64)
    fast = assign_experts(arr, lookup, groups)
    reference = assign_experts_reference(arr, lookup, groups)
    assert fast.xpu_experts == reference.xpu_experts
    assert fast.pim_experts == reference.pim_experts
    assert fast.xpu_time_s == reference.xpu_time_s
    assert fast.pim_time_s == reference.pim_time_s


def test_zero_and_empty_edge_cases_match():
    math = LayerMath(MODELS["mixtral"])
    lookup = ExpertTimeLookup(math, h100_xpu(), logic_pim_unit())
    # all-zero counts: no time, everything parked on PIM by convention
    outcome = assign_experts(np.zeros(6, dtype=np.int64), lookup)
    reference = assign_experts_reference(np.zeros(6, dtype=np.int64), lookup)
    assert outcome == reference
    assert outcome.makespan_s == 0.0
    # empty prefill
    vec = math.attention_prefill([])
    ref = attention_prefill_reference(math, [])
    assert (vec.flops, vec.bytes_read, vec.bytes_written) == (
        ref.flops,
        ref.bytes_read,
        ref.bytes_written,
    )
    # zero-length requests are skipped exactly
    vec = math.attention_prefill([0, 64, 0], 0.5, [10, 20, 30])
    ref = attention_prefill_reference(math, [0, 64, 0], 0.5, [10, 20, 30])
    assert (vec.flops, vec.bytes_read, vec.bytes_written) == (
        ref.flops,
        ref.bytes_read,
        ref.bytes_written,
    )
