"""Property-based invariants of the stage executor.

These catch accounting bugs that individual shape tests miss: monotonicity
in workload size, energy positivity and composition, and determinism.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import StageExecutor, StageWorkload
from repro.core.system import duplex_system, gpu_system
from repro.models.config import mixtral
from repro.models.ops import OpCategory


@pytest.fixture(scope="module")
def gpu_exec():
    return StageExecutor(gpu_system(mixtral()), mixtral(), deterministic_gating=True)


@pytest.fixture(scope="module")
def duplex_exec():
    return StageExecutor(
        duplex_system(mixtral(), co_processing=True, expert_tensor_parallel=True),
        mixtral(),
        deterministic_gating=True,
    )


def decode(batch, ctx):
    return StageWorkload(decode_context_lengths=np.full(batch, ctx, dtype=np.int64))


class TestMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(batch=st.integers(1, 96), ctx=st.integers(64, 8192))
    def test_latency_grows_with_batch(self, gpu_exec, batch, ctx):
        small = gpu_exec.run_stage(decode(batch, ctx)).latency_s
        large = gpu_exec.run_stage(decode(batch + 16, ctx)).latency_s
        assert large > small

    @settings(max_examples=15, deadline=None)
    @given(batch=st.integers(1, 64), ctx=st.integers(64, 4096))
    def test_latency_grows_with_context(self, duplex_exec, batch, ctx):
        short = duplex_exec.run_stage(decode(batch, ctx)).latency_s
        long = duplex_exec.run_stage(decode(batch, ctx * 2)).latency_s
        assert long > short

    @settings(max_examples=10, deadline=None)
    @given(lin=st.integers(64, 4096))
    def test_prefill_makes_stage_slower(self, gpu_exec, lin):
        plain = gpu_exec.run_stage(decode(16, 1024)).latency_s
        mixed = gpu_exec.run_stage(
            StageWorkload(
                decode_context_lengths=np.full(16, 1024, dtype=np.int64),
                prefill_lengths=(lin,),
            )
        ).latency_s
        assert mixed > plain


class TestEnergyAccounting:
    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(1, 64), ctx=st.integers(64, 4096))
    def test_energy_positive_and_composed(self, gpu_exec, batch, ctx):
        result = gpu_exec.run_stage(decode(batch, ctx))
        assert result.energy_j > 0
        parts = (
            sum(result.dram_energy_by_category.values())
            + sum(result.compute_energy_by_category.values())
            + result.comm_energy_j
        )
        assert result.energy_j == pytest.approx(parts)

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(2, 64))
    def test_duplex_energy_below_gpu_on_decode(self, gpu_exec, duplex_exec, batch):
        stage = decode(batch, 2048)
        assert duplex_exec.run_stage(stage).energy_j < gpu_exec.run_stage(stage).energy_j

    def test_all_categories_non_negative(self, duplex_exec):
        result = duplex_exec.run_stage(
            StageWorkload(
                decode_context_lengths=np.full(16, 1024, dtype=np.int64),
                prefill_lengths=(512,),
            )
        )
        for table in (
            result.time_by_category,
            result.dram_energy_by_category,
            result.compute_energy_by_category,
        ):
            assert all(value >= 0 for value in table.values())


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(1, 48), ctx=st.integers(64, 4096))
    def test_deterministic_gating_is_pure(self, batch, ctx):
        a = StageExecutor(gpu_system(mixtral()), mixtral(), deterministic_gating=True)
        b = StageExecutor(gpu_system(mixtral()), mixtral(), deterministic_gating=True)
        stage = decode(batch, ctx)
        assert a.run_stage(stage).latency_s == b.run_stage(stage).latency_s

    def test_gpu_breakdown_partitions_latency(self, gpu_exec):
        # Serial system: categories partition the critical path exactly.
        result = gpu_exec.run_stage(decode(32, 2048))
        assert sum(result.time_by_category.values()) == pytest.approx(result.latency_s)

    def test_coprocessed_mixed_stage_busy_can_exceed_latency(self, duplex_exec):
        result = duplex_exec.run_stage(
            StageWorkload(
                decode_context_lengths=np.full(31, 2048, dtype=np.int64),
                prefill_lengths=(2048,),
            )
        )
        busy = sum(result.time_by_category.values())
        assert busy >= result.latency_s * 0.99  # overlap never loses time
        # MoE busy time includes both units' shares.
        assert result.busy_time(OpCategory.MOE) > 0
