"""Tests for memoized stage pricing (quantized composition keys)."""

import time

import numpy as np
import pytest

from repro.core.executor import StageExecutor, StageWorkload
from repro.core.system import duplex_system, gpu_system
from repro.errors import ConfigError
from repro.models.config import mixtral
from repro.serving.generator import WorkloadSpec
from repro.serving.simulator import ServingSimulator, SimulationLimits


MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)


def stage(contexts, prefills=(), prefill_ctx=()):
    return StageWorkload(
        decode_context_lengths=np.asarray(contexts, dtype=np.int64),
        prefill_lengths=tuple(prefills),
        prefill_context_lengths=tuple(prefill_ctx),
    )


class TestCacheMechanics:
    def test_exact_mode_never_caches(self):
        executor = StageExecutor(SYSTEM, MODEL, seed=0)
        executor.run_stage(stage([1024] * 8))
        executor.run_stage(stage([1024] * 8))
        info = executor.pricing_cache_info()
        assert info.hits == info.misses == info.size == 0

    def test_same_bucket_hits(self):
        executor = StageExecutor(SYSTEM, MODEL, seed=0, memoize=True, context_bucket_tokens=64)
        executor.run_stage(stage([1024] * 8))
        executor.run_stage(stage([1030] * 8))  # same 64-token bucket
        info = executor.pricing_cache_info()
        assert info.misses == 1 and info.hits == 1 and info.size == 1

    def test_bucket_crossing_misses(self):
        executor = StageExecutor(SYSTEM, MODEL, seed=0, memoize=True, context_bucket_tokens=64)
        executor.run_stage(stage([1020] * 8))
        executor.run_stage(stage([1030] * 8))  # 1020//64=15 vs 1030//64=16
        assert executor.pricing_cache_info().misses == 2

    def test_key_is_order_invariant(self):
        executor = StageExecutor(SYSTEM, MODEL, seed=0, memoize=True)
        executor.run_stage(stage([256, 2048]))
        executor.run_stage(stage([2048, 256]))
        assert executor.pricing_cache_info().hits == 1

    def test_multi_node_prices_the_canonical_order(self):
        # The cache key is a multiset, so the priced representative must be
        # canonical too: node 0's [::n_nodes] data-parallel share is
        # order-sensitive, and pricing arrival order would let permutations
        # share a wrong price on multi-node systems.
        from repro.core.system import gpu_system
        from repro.models.config import grok1

        model = grok1()
        system = gpu_system(model, doubled=True)  # multi-node topology
        assert system.topology.n_nodes > 1
        memo = StageExecutor(system, model, seed=0, memoize=True)
        permuted = memo.run_stage(stage([64, 8192]))
        reordered = memo.run_stage(stage([8192, 64]))
        assert memo.pricing_cache_info().hits == 1
        exact = StageExecutor(system, model, seed=0, deterministic_gating=True)
        sorted_price = exact.run_stage(stage([64, 8192])).latency_s
        assert permuted.latency_s == reordered.latency_s
        assert permuted.latency_s == pytest.approx(sorted_price, rel=0.02)

    def test_prefill_lengths_are_exact_keys(self):
        executor = StageExecutor(SYSTEM, MODEL, seed=0, memoize=True)
        executor.run_stage(stage([1024], prefills=(512,)))
        executor.run_stage(stage([1024], prefills=(513,)))
        assert executor.pricing_cache_info().misses == 2

    def test_cached_result_is_copied(self):
        executor = StageExecutor(SYSTEM, MODEL, seed=0, memoize=True)
        first = executor.run_stage(stage([1024] * 4))
        first.time_by_category.clear()
        first.latency_s = -1.0
        second = executor.run_stage(stage([1024] * 4))
        assert second.latency_s > 0
        assert second.time_by_category

    def test_clear_resets_counters(self):
        executor = StageExecutor(SYSTEM, MODEL, seed=0, memoize=True)
        executor.run_stage(stage([1024]))
        executor.clear_pricing_cache()
        info = executor.pricing_cache_info()
        assert info.hits == info.misses == info.size == 0

    def test_bad_bucket_rejected(self):
        with pytest.raises(ConfigError):
            StageExecutor(SYSTEM, MODEL, memoize=True, context_bucket_tokens=0)


class TestMemoizedAccuracy:
    def test_stage_price_within_documented_tolerance(self):
        # Quantization snaps contexts to bucket midpoints: at paper-scale
        # contexts the latency error stays within a couple of percent.
        exact = StageExecutor(SYSTEM, MODEL, seed=0, deterministic_gating=True)
        memo = StageExecutor(SYSTEM, MODEL, seed=0, memoize=True, context_bucket_tokens=64)
        for contexts, prefills in (
            ([4096] * 16, ()),
            ([512, 1024, 2048, 4096], ()),
            ([4096] * 8, (4096,)),
            ([100, 163, 1025], (512, 64)),
        ):
            workload = stage(contexts, prefills)
            exact_result = exact.run_stage(workload)
            memo_result = memo.run_stage(workload)
            assert memo_result.latency_s == pytest.approx(exact_result.latency_s, rel=0.02)
            assert memo_result.energy_j == pytest.approx(exact_result.energy_j, rel=0.02)
            assert memo_result.is_mixed == exact_result.is_mixed
            assert memo_result.tokens_generated == exact_result.tokens_generated

    def test_simulation_reports_agree(self):
        # Closed loop admits by free slots, not by the clock, so exact and
        # memoized runs execute the *same* stage sequence — any report
        # difference is pure pricing error (bucketing + expected-counts
        # gating), which stays within a few percent.  (Open-loop runs also
        # diverge in trajectory: shifted stage boundaries admit Poisson
        # arrivals at different times, which is not a pricing error.)
        spec = WorkloadSpec(lin_mean=2048, lout_mean=256, lin_cv=0.3, lout_cv=0.3)
        limits = SimulationLimits(max_stages=300, warmup_stages=20)
        exact = ServingSimulator(SYSTEM, MODEL, spec, max_batch=32, seed=3).run(limits)
        memo = ServingSimulator(
            SYSTEM, MODEL, spec, max_batch=32, seed=3, memoize_pricing=True
        ).run(limits)
        assert memo.tokens_generated == exact.tokens_generated
        assert memo.tbt_p50_s == pytest.approx(exact.tbt_p50_s, rel=0.03)
        assert memo.throughput_tokens_per_s == pytest.approx(
            exact.throughput_tokens_per_s, rel=0.03
        )
        assert memo.energy_per_token_j == pytest.approx(exact.energy_per_token_j, rel=0.03)


class TestMemoizedSpeed:
    def test_decode_heavy_run_hits_cache(self):
        spec = WorkloadSpec(lin_mean=2048, lout_mean=256, qps=10.0)
        limits = SimulationLimits(max_stages=300, warmup_stages=20)
        sim = ServingSimulator(SYSTEM, MODEL, spec, max_batch=32, seed=3, memoize_pricing=True)
        sim.run(limits)
        info = sim.executor.pricing_cache_info()
        assert info.hit_rate > 0.5
        assert info.size < info.hits + info.misses

    def test_fig13_sized_sweep_is_faster_memoized(self):
        # Acceptance: a Fig. 13-shaped point (Mixtral, Poisson, long
        # prompts) prices measurably faster with memoization.  The margin
        # is structural — decode-only stages repeat their quantized
        # composition for dozens of stages — so the assertion tolerates
        # noisy CI clocks.  Both arms pin the scalar per-stage loop
        # (columnar=False): the subject here is per-stage pricing cost,
        # and the columnar run path would otherwise make the *exact* arm
        # faster than the memoized one (memoized pricing quantizes
        # compositions, so it never takes vectorized runs).
        spec = WorkloadSpec(lin_mean=4096, lout_mean=512, qps=10.0)
        limits = SimulationLimits(max_stages=500, warmup_stages=30)

        def run_once(memoize):
            sim = ServingSimulator(
                gpu_system(MODEL), MODEL, spec, max_batch=64, seed=0,
                memoize_pricing=memoize, columnar=False,
            )
            start = time.perf_counter()
            report = sim.run(limits)
            return time.perf_counter() - start, report

        exact_time, exact_report = run_once(False)
        memo_time, memo_report = run_once(True)
        assert memo_time < exact_time
        # Sanity only — near saturation the two trajectories legitimately
        # diverge; tight agreement is asserted on the closed-loop test above.
        assert 0.5 < memo_report.tokens_generated / exact_report.tokens_generated < 2.0
