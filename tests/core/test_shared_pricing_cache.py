"""The process-wide shared stage-pricing cache: sharing, isolation, pickling."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.executor import (
    GLOBAL_PRICING_CACHE,
    SharedPricingCache,
    StageExecutor,
    StageWorkload,
    install_shared_pricing_cache,
    snapshot_shared_pricing_cache,
)
from repro.core.system import duplex_system
from repro.errors import ConfigError
from repro.models.config import glam, mixtral
from repro.serving.cluster import ClusterSimulator
from repro.serving.generator import WorkloadSpec
from repro.serving.simulator import ServingSimulator, SimulationLimits

MODEL = mixtral()
SYSTEM = duplex_system(MODEL, co_processing=True, expert_tensor_parallel=True)


def stage(contexts):
    return StageWorkload(decode_context_lengths=np.asarray(contexts, dtype=np.int64))


def executor(cache, **kwargs):
    return StageExecutor(SYSTEM, MODEL, seed=0, memoize=True, shared_cache=cache, **kwargs)


class TestSharing:
    def test_same_spec_executors_share_prices(self):
        cache = SharedPricingCache()
        first = executor(cache)
        second = executor(cache)
        first.run_stage(stage([1024] * 8))
        second.run_stage(stage([1024] * 8))
        assert first.pricing_cache_info().misses == 1
        # The second executor never derived the price itself.
        assert second.pricing_cache_info().hits == 1
        assert second.pricing_cache_info().misses == 0
        assert len(cache) == 1
        assert cache.n_specs == 1

    def test_shared_results_equal_private_results(self):
        cache = SharedPricingCache()
        shared = executor(cache)
        private = StageExecutor(SYSTEM, MODEL, seed=0, memoize=True)
        workload = stage([700, 1500, 2300])
        shared.run_stage(stage([700, 1500, 2300]))  # warm the shared store
        from_shared = executor(cache).run_stage(workload)
        from_private = private.run_stage(workload)
        assert from_shared.latency_s == from_private.latency_s
        assert from_shared.energy_j == from_private.energy_j

    def test_different_specs_do_not_collide(self):
        cache = SharedPricingCache()
        base = executor(cache)
        other_bucket = StageExecutor(
            SYSTEM, MODEL, seed=0, memoize=True, shared_cache=cache, context_bucket_tokens=32
        )
        other_model = StageExecutor(
            duplex_system(glam(), co_processing=True, expert_tensor_parallel=True),
            glam(),
            seed=0,
            memoize=True,
            shared_cache=cache,
        )
        base.run_stage(stage([1024] * 4))
        other_bucket.run_stage(stage([1024] * 4))
        other_model.run_stage(stage([1024] * 4))
        assert cache.n_specs == 3
        assert other_bucket.pricing_cache_info().hits == 0
        assert other_model.pricing_cache_info().hits == 0

    def test_exact_mode_ignores_shared_cache(self):
        cache = SharedPricingCache()
        exact = StageExecutor(SYSTEM, MODEL, seed=0, memoize=False, shared_cache=cache)
        exact.run_stage(stage([1024]))
        assert len(cache) == 0

    def test_clear_empties_stores_but_keeps_bindings(self):
        cache = SharedPricingCache()
        bound = executor(cache)
        bound.run_stage(stage([512]))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        bound.run_stage(stage([512]))  # the executor still writes the same store
        assert len(cache) == 1


class TestWarmStart:
    def test_pickle_round_trip_preserves_prices(self):
        cache = SharedPricingCache()
        source = executor(cache)
        source.run_stage(stage([1024] * 8))
        clone: SharedPricingCache = pickle.loads(pickle.dumps(cache))
        assert len(clone) == len(cache) == 1
        warmed = executor(clone)
        warmed.run_stage(stage([1024] * 8))
        assert warmed.pricing_cache_info().hits == 1
        assert warmed.pricing_cache_info().misses == 0

    def test_snapshot_and_install_merge_into_global(self):
        donor = SharedPricingCache()
        executor(donor).run_stage(stage([2048, 2048]))
        before = len(GLOBAL_PRICING_CACHE)
        added = GLOBAL_PRICING_CACHE.merge(donor)
        try:
            assert added == 1
            assert len(GLOBAL_PRICING_CACHE) == before + 1
            # snapshot → install round-trips (idempotent on identical entries)
            payload = snapshot_shared_pricing_cache()
            assert install_shared_pricing_cache(payload) == 0
        finally:
            GLOBAL_PRICING_CACHE.clear()

    def test_install_rejects_garbage(self):
        with pytest.raises(ConfigError):
            install_shared_pricing_cache(pickle.dumps({"not": "a cache"}))


class TestClusterIntegration:
    def test_replicas_share_one_price_store(self):
        cache_before = len(GLOBAL_PRICING_CACHE)
        spec = WorkloadSpec(lin_mean=256, lout_mean=32, qps=60.0)
        sim = ClusterSimulator(
            SYSTEM, MODEL, spec, n_replicas=3, max_batch=4, seed=1,
            memoize_pricing=True, max_requests=40,
        )
        try:
            sim.run(SimulationLimits(max_stages=40, warmup_stages=4))
            infos = [replica.executor.pricing_cache_info() for replica in sim.replicas]
            total_misses = sum(info.misses for info in infos)
            total_hits = sum(info.hits for info in infos)
            assert total_hits > 0
            # Replicas serve statistically identical slices of one arrival
            # stream; a shared store derives each bucketed composition once
            # fleet-wide, so misses stay well below replicas x store size.
            store_size = len(GLOBAL_PRICING_CACHE) - cache_before
            assert 0 < total_misses < 3 * store_size + 3
        finally:
            GLOBAL_PRICING_CACHE.clear()

    def test_simulator_shared_flag_joins_global_cache(self):
        GLOBAL_PRICING_CACHE.clear()
        spec = WorkloadSpec(lin_mean=256, lout_mean=32, qps=40.0)
        limits = SimulationLimits(max_stages=30, warmup_stages=4)
        try:
            first = ServingSimulator(
                SYSTEM, MODEL, spec, max_batch=4, seed=2,
                memoize_pricing=True, shared_pricing_cache=True,
            )
            first.run(limits)
            second = ServingSimulator(
                SYSTEM, MODEL, spec, max_batch=4, seed=2,
                memoize_pricing=True, shared_pricing_cache=True,
            )
            second.run(limits)
            assert second.executor.pricing_cache_info().misses == 0
            assert second.executor.pricing_cache_info().hits > 0
        finally:
            GLOBAL_PRICING_CACHE.clear()
