"""Tests for the stage executor — the paper's headline effects in miniature.

These tests check *shapes*, not absolute numbers: Duplex beats GPU on
decoding-only stages, the hetero system collapses on mixed stages, MoE
dominates GPU decode time, energy falls on Duplex, and so on.
"""

import numpy as np
import pytest

from repro.core.executor import StageExecutor, StageWorkload
from repro.core.system import (
    bank_pim_system,
    duplex_system,
    gpu_system,
    hetero_system,
)
from repro.errors import ConfigError
from repro.models.config import glam, grok1, llama3_70b, mixtral, opt_66b
from repro.models.ops import OpCategory


def decode_stage(batch=32, ctx=3000):
    return StageWorkload(decode_context_lengths=np.full(batch, ctx))

def mixed_stage(batch=31, ctx=3000, lin=2048):
    return StageWorkload(decode_context_lengths=np.full(batch, ctx), prefill_lengths=(lin,))


@pytest.fixture(scope="module")
def gpu_exec():
    return StageExecutor(gpu_system(mixtral()), mixtral(), seed=0)


@pytest.fixture(scope="module")
def duplex_exec():
    return StageExecutor(duplex_system(mixtral()), mixtral(), seed=0)


@pytest.fixture(scope="module")
def duplex_pe_et_exec():
    return StageExecutor(
        duplex_system(mixtral(), co_processing=True, expert_tensor_parallel=True),
        mixtral(),
        seed=0,
    )


class TestWorkload:
    def test_mixed_detection(self):
        assert mixed_stage().is_mixed
        assert not decode_stage().is_mixed

    def test_token_accounting(self):
        stage = mixed_stage(batch=31, lin=2048)
        assert stage.total_tokens == 31 + 2048
        assert stage.n_requests == 32

    def test_empty_stage_rejected(self):
        with pytest.raises(ConfigError):
            StageWorkload(decode_context_lengths=np.array([]))

    def test_negative_context_rejected(self):
        with pytest.raises(ConfigError):
            StageWorkload(decode_context_lengths=np.array([-1]))

    def test_zero_prefill_rejected(self):
        with pytest.raises(ConfigError):
            StageWorkload(decode_context_lengths=np.array([5]), prefill_lengths=(0,))


class TestGpuBaseline:
    def test_moe_dominates_decode(self, gpu_exec):
        # Fig. 4(a): MoE is the largest share of GPU decode time.
        result = gpu_exec.run_stage(decode_stage())
        moe = result.busy_time(OpCategory.MOE)
        assert moe > 0.5 * result.latency_s

    def test_mixed_slower_than_decode(self, gpu_exec):
        assert gpu_exec.run_stage(mixed_stage()).latency_s > gpu_exec.run_stage(
            decode_stage()
        ).latency_s

    def test_longer_context_costs_more(self, gpu_exec):
        short = gpu_exec.run_stage(decode_stage(ctx=512)).latency_s
        long = gpu_exec.run_stage(decode_stage(ctx=8000)).latency_s
        assert long > short

    def test_breakdown_sums_to_latency(self, gpu_exec):
        # GPU is fully serial: the category times are the latency.
        result = gpu_exec.run_stage(decode_stage())
        assert sum(result.time_by_category.values()) == pytest.approx(result.latency_s)

    def test_energy_positive_and_split(self, gpu_exec):
        result = gpu_exec.run_stage(decode_stage())
        assert result.energy_j > 0
        assert result.dram_energy_by_category[OpCategory.MOE] > 0
        assert result.compute_energy_by_category[OpCategory.FC] > 0


class TestDuplexSpeedup:
    def test_duplex_beats_gpu_on_decode(self, gpu_exec, duplex_exec):
        gpu = gpu_exec.run_stage(decode_stage()).latency_s
        duplex = duplex_exec.run_stage(decode_stage()).latency_s
        assert 2.0 < gpu / duplex < 4.0

    def test_duplex_beats_2xgpu_on_decode(self, duplex_exec):
        double = StageExecutor(gpu_system(mixtral(), doubled=True), mixtral(), seed=0)
        assert duplex_exec.run_stage(decode_stage()).latency_s < double.run_stage(
            decode_stage()
        ).latency_s

    def test_et_beats_base_duplex_on_decode(self, duplex_exec, duplex_pe_et_exec):
        base = duplex_exec.run_stage(decode_stage()).latency_s
        et = duplex_pe_et_exec.run_stage(decode_stage()).latency_s
        assert 1.0 < base / et < 1.5

    def test_duplex_energy_lower_than_gpu(self, gpu_exec, duplex_exec):
        gpu = gpu_exec.run_stage(decode_stage()).energy_j
        duplex = duplex_exec.run_stage(decode_stage()).energy_j
        assert 0.5 < duplex / gpu < 0.85

    def test_mixed_stage_stays_near_gpu(self, gpu_exec, duplex_pe_et_exec):
        # The xPU handles mixed-stage MoE; Duplex must not blow up there.
        gpu = gpu_exec.run_stage(mixed_stage()).latency_s
        duplex = duplex_pe_et_exec.run_stage(mixed_stage()).latency_s
        assert duplex < 1.1 * gpu


class TestHeteroCollapse:
    def test_hetero_helps_decode_but_collapses_mixed(self, gpu_exec):
        hetero = StageExecutor(hetero_system(mixtral()), mixtral(), seed=0)
        gpu_decode = gpu_exec.run_stage(decode_stage()).latency_s
        gpu_mixed = gpu_exec.run_stage(mixed_stage()).latency_s
        het_decode = hetero.run_stage(decode_stage()).latency_s
        het_mixed = hetero.run_stage(mixed_stage()).latency_s
        assert het_decode < gpu_decode  # p50 TBT improves (Fig. 5(b))
        assert het_mixed > 3 * gpu_mixed  # T2FT and tail TBT explode

    def test_hetero_migration_charged(self):
        hetero = StageExecutor(hetero_system(mixtral()), mixtral(), seed=0)
        result = hetero.run_stage(mixed_stage())
        assert result.busy_time(OpCategory.MIGRATION) > 0


class TestBankPim:
    def test_bank_pim_between_gpu_and_duplex_on_moe(self, gpu_exec, duplex_exec):
        bank = StageExecutor(bank_pim_system(mixtral()), mixtral(), seed=0)
        gpu = gpu_exec.run_stage(decode_stage(batch=64)).latency_s
        duplex = duplex_exec.run_stage(decode_stage(batch=64)).latency_s
        bank_t = bank.run_stage(decode_stage(batch=64)).latency_s
        assert duplex < bank_t < gpu

    def test_bank_pim_wins_on_mha_decode(self):
        # OPT (MHA): Op/B ~ 1 suits Bank-PIM better than Logic-PIM (Fig. 14).
        model = opt_66b()
        bank = StageExecutor(bank_pim_system(model), model, seed=0)
        duplex = StageExecutor(duplex_system(model, co_processing=True), model, seed=0)
        stage = decode_stage(batch=32, ctx=4000)
        assert bank.run_stage(stage).latency_s < duplex.run_stage(stage).latency_s

    def test_duplex_wins_on_gqa_decode(self):
        # Llama3 (GQA, deggrp 8): Bank-PIM lacks compute (Fig. 14).
        model = llama3_70b()
        bank = StageExecutor(bank_pim_system(model), model, seed=0)
        duplex = StageExecutor(duplex_system(model, co_processing=True), model, seed=0)
        stage = decode_stage(batch=64, ctx=4000)
        assert duplex.run_stage(stage).latency_s < bank.run_stage(stage).latency_s


class TestOtherModels:
    def test_glam_runs_with_alternating_layers(self):
        model = glam()
        executor = StageExecutor(gpu_system(model), model, seed=0)
        result = executor.run_stage(decode_stage(batch=64, ctx=1500))
        assert result.latency_s > 0
        assert result.busy_time(OpCategory.MOE) > 0
        assert result.busy_time(OpCategory.FC) > 0

    def test_grok1_two_nodes(self):
        model = grok1()
        executor = StageExecutor(gpu_system(model), model, seed=0)
        result = executor.run_stage(decode_stage(batch=32, ctx=2000))
        assert result.latency_s > 0
        assert result.busy_time(OpCategory.COMMUNICATION) > 0

    def test_dense_model_has_no_moe_time(self):
        model = llama3_70b()
        executor = StageExecutor(gpu_system(model), model, seed=0)
        result = executor.run_stage(decode_stage())
        assert result.busy_time(OpCategory.MOE) == 0.0


class TestDeterminism:
    def test_deterministic_gating_reproducible(self):
        model = mixtral()
        a = StageExecutor(gpu_system(model), model, deterministic_gating=True)
        b = StageExecutor(gpu_system(model), model, deterministic_gating=True)
        assert a.run_stage(decode_stage()).latency_s == b.run_stage(decode_stage()).latency_s

    def test_seeded_sampling_reproducible(self):
        model = mixtral()
        a = StageExecutor(duplex_system(model), model, seed=42)
        b = StageExecutor(duplex_system(model), model, seed=42)
        assert a.run_stage(decode_stage()).latency_s == b.run_stage(decode_stage()).latency_s

    def test_result_counts_tokens(self):
        model = mixtral()
        executor = StageExecutor(gpu_system(model), model, seed=0)
        assert executor.run_stage(decode_stage(batch=32)).tokens_generated == 32
