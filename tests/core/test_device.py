"""Tests for device models."""

import pytest

from repro.core.device import (
    DeviceModel,
    bank_pim_duplex_device,
    duplex_device,
    gpu_device,
    pim_only_device,
)
from repro.errors import ConfigError
from repro.units import GiB


class TestFactories:
    def test_gpu_has_no_pim(self):
        device = gpu_device()
        assert device.pim is None
        assert device.xpu is not None

    def test_duplex_has_both_units(self):
        device = duplex_device()
        assert device.supports_coprocessing

    def test_bank_pim_uses_in_bank_unit(self):
        device = bank_pim_duplex_device()
        assert device.pim is not None
        assert "Bank-PIM" in device.pim.name

    def test_pim_only_has_no_xpu(self):
        device = pim_only_device()
        assert device.xpu is None
        assert not device.supports_coprocessing

    def test_default_capacity_is_80_gib(self):
        assert gpu_device().hbm_capacity_bytes == 80 * GiB


class TestAccessors:
    def test_require_xpu_on_gpu(self):
        device = gpu_device()
        assert device.require_xpu() is device.xpu

    def test_require_pim_on_gpu_raises(self):
        with pytest.raises(ConfigError):
            gpu_device().require_pim()

    def test_require_xpu_on_pim_only_raises(self):
        with pytest.raises(ConfigError):
            pim_only_device().require_xpu()


class TestValidation:
    def test_rejects_unitless_device(self):
        with pytest.raises(ConfigError):
            DeviceModel(name="empty", xpu=None, pim=None)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            DeviceModel(name="bad", xpu=gpu_device().xpu, pim=None, hbm_capacity_bytes=0)
