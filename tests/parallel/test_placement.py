"""Tests for model placement over clusters.

The reference deployments come straight from Section VI: Mixtral on one node
of four devices, GLaM on one node of eight, Grok1 on two nodes of eight.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.models.config import glam, grok1, llama3_70b, mixtral
from repro.parallel.placement import ExpertPlacement, ModelPlacement
from repro.parallel.topology import ClusterTopology
from repro.units import GiB


def mixtral_ep():
    return ModelPlacement(mixtral(), ClusterTopology(1, 4))


def mixtral_etp():
    return ModelPlacement(
        mixtral(), ClusterTopology(1, 4), ExpertPlacement.EXPERT_TENSOR_PARALLEL
    )


def grok1_ep():
    return ModelPlacement(grok1(), ClusterTopology(2, 8))


class TestShardFractions:
    def test_fc_fraction_is_tensor_parallel_share(self):
        assert mixtral_ep().fc_fraction == 0.25
        assert grok1_ep().fc_fraction == 0.125

    def test_node_batch_fraction_is_data_parallel_share(self):
        assert mixtral_ep().node_batch_fraction == 1.0
        assert grok1_ep().node_batch_fraction == 0.5

    def test_ep_expert_fraction_full_when_experts_outnumber_devices(self):
        assert mixtral_ep().expert_fraction == 1.0
        assert mixtral_ep().resident_experts_per_device == 2

    def test_ep_shards_experts_when_devices_outnumber_them(self):
        # Grok1: 16 devices, 8 experts -> 2-way tensor shards per expert.
        placement = grok1_ep()
        assert placement.expert_fraction == 0.5
        assert placement.resident_experts_per_device == 1

    def test_etp_gives_every_device_all_node_experts(self):
        placement = mixtral_etp()
        assert placement.expert_fraction == 0.25
        assert placement.resident_experts_per_device == 8

    def test_glam_eight_experts_per_device(self):
        placement = ModelPlacement(glam(), ClusterTopology(1, 8))
        assert placement.resident_experts_per_device == 8
        assert placement.expert_fraction == 1.0


class TestCommunicationStructure:
    def test_ep_uses_all_to_all(self):
        assert mixtral_ep().moe_uses_all_to_all
        assert mixtral_ep().moe_all_to_all_group == (4, False)

    def test_etp_single_node_needs_no_all_to_all(self):
        assert not mixtral_etp().moe_uses_all_to_all

    def test_etp_multi_node_keeps_inter_node_all_to_all(self):
        placement = ModelPlacement(
            grok1(), ClusterTopology(2, 8), ExpertPlacement.EXPERT_TENSOR_PARALLEL
        )
        assert placement.moe_uses_all_to_all
        assert placement.moe_all_to_all_group == (2, True)

    def test_etp_needs_tp_all_reduce(self):
        assert mixtral_etp().moe_uses_tp_all_reduce
        assert not mixtral_ep().moe_uses_tp_all_reduce

    def test_ep_sharded_experts_need_all_reduce(self):
        # Grok1 EP shards each expert over two devices.
        assert grok1_ep().moe_uses_tp_all_reduce

    def test_dense_model_has_no_moe_comm(self):
        placement = ModelPlacement(llama3_70b(), ClusterTopology(1, 4))
        assert not placement.moe_uses_all_to_all
        assert not placement.moe_uses_tp_all_reduce


class TestTokenPartition:
    def test_ep_partition_splits_experts(self):
        counts = np.arange(8)
        parts = mixtral_ep().per_device_expert_counts(counts)
        assert len(parts) == 4
        assert [list(p) for p in parts] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_etp_partition_replicates_within_node(self):
        counts = np.arange(8)
        parts = mixtral_etp().per_device_expert_counts(counts)
        assert len(parts) == 4
        assert all((p == counts).all() for p in parts)

    def test_ep_sharded_partition_replicates_per_expert(self):
        counts = np.arange(8)
        parts = grok1_ep().per_device_expert_counts(counts)
        assert len(parts) == 16
        assert list(parts[0]) == [0] and list(parts[1]) == [0]
        assert list(parts[14]) == [7] and list(parts[15]) == [7]

    def test_partition_conserves_tokens(self):
        counts = np.array([5, 3, 9, 1, 0, 7, 2, 4])
        parts = mixtral_ep().per_device_expert_counts(counts)
        assert sum(int(p.sum()) for p in parts) == counts.sum()

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigError):
            mixtral_ep().per_device_expert_counts(np.zeros(5))

    def test_dense_model_rejected(self):
        placement = ModelPlacement(llama3_70b(), ClusterTopology(1, 4))
        with pytest.raises(ConfigError):
            placement.per_device_expert_counts(np.zeros(1))


class TestMemoryFootprint:
    def test_mixtral_fits_four_80gb_devices(self):
        per_device = mixtral_ep().weight_bytes_per_device()
        assert per_device < 30 * GiB  # 94 GB total / 4 plus margin

    def test_expert_strategies_use_same_memory(self):
        # No duplication either way — the paper's argument against hetero.
        assert mixtral_ep().weight_bytes_per_device() == pytest.approx(
            mixtral_etp().weight_bytes_per_device()
        )

    def test_total_weights_conserved_across_cluster(self):
        placement = mixtral_ep()
        total = placement.weight_bytes_per_device() * placement.topology.n_devices
        model = mixtral()
        # Non-expert weights replicated per node (1 node here): exact match.
        assert total == pytest.approx(model.total_weight_bytes, rel=0.001)

    def test_grok1_replicates_non_expert_per_node(self):
        placement = grok1_ep()
        total = placement.weight_bytes_per_device() * placement.topology.n_devices
        model = grok1()
        expected = model.total_weight_bytes + model.non_expert_weight_bytes  # 2 nodes
        assert total == pytest.approx(expected, rel=0.001)

    def test_kv_bytes_per_token_per_device(self):
        assert mixtral_ep().kv_bytes_per_token_per_device() == pytest.approx(
            mixtral().kv_bytes_per_token / 4
        )


#: (placement factory, how many times each routed token lands on a device):
#: EP with whole resident experts touches each token once; sharded or
#: replicated experts touch it once per shard/replica.
CONSERVATION_CASES = [
    (mixtral_ep, 1),  # 4 devices, 8 experts: 2 whole experts per device
    (mixtral_etp, 4),  # every device holds all 8 node experts
    (grok1_ep, 2),  # 16 devices, 8 experts: 2-way shards per expert
]


class TestPartitionProperties:
    @pytest.mark.parametrize("factory,multiplicity", CONSERVATION_CASES)
    @given(seed=st.integers(0, 2**32 - 1), scale=st.integers(1, 10_000))
    def test_partition_conserves_tokens(self, factory, multiplicity, seed, scale):
        placement = factory()
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, scale, size=placement.model.n_experts)
        parts = placement.per_device_expert_counts(counts)
        assert len(parts) == placement.topology.n_devices
        assert sum(int(p.sum()) for p in parts) == multiplicity * counts.sum()

    @pytest.mark.parametrize("factory,_", CONSERVATION_CASES)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_partition_never_invents_tokens(self, factory, _, seed):
        # Every per-device count traces back to one expert's count.
        placement = factory()
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 100, size=placement.model.n_experts)
        for part in placement.per_device_expert_counts(counts):
            assert all(int(c) in counts for c in part)

    @pytest.mark.parametrize("factory", [mixtral_ep, mixtral_etp, grok1_ep])
    def test_weight_fractions_compose_to_full_model(self, factory):
        # Per-device weights times the cluster recover the whole model,
        # plus one extra non-expert (and shared-expert) copy per extra node
        # — those layers are replicated node-wise for data parallelism, and
        # shared experts are replicated device-wise.
        placement = factory()
        model, topo = placement.model, placement.topology
        total = placement.weight_bytes_per_device() * topo.n_devices
        expected = (
            model.total_weight_bytes
            + (topo.n_nodes - 1) * model.non_expert_weight_bytes
            + (topo.n_devices - 1) * model.shared_expert_weight_bytes
        )
        assert total == pytest.approx(expected, rel=1e-6)

    @pytest.mark.parametrize("factory", [mixtral_ep, mixtral_etp, grok1_ep])
    def test_kv_fractions_compose_to_full_cache(self, factory):
        # KV is head-sharded within a node and data-parallel across nodes:
        # one node's devices together hold exactly one full cache.
        placement = factory()
        per_node = placement.kv_bytes_per_token_per_device() * placement.topology.devices_per_node
        assert per_node == pytest.approx(placement.model.kv_bytes_per_token)


class TestValidation:
    def test_rejects_indivisible_experts(self):
        with pytest.raises(ConfigError):
            ModelPlacement(mixtral(), ClusterTopology(1, 3))

    def test_rejects_indivisible_device_sharding(self):
        with pytest.raises(ConfigError):
            # 12 devices over 8 experts: not an even shard.
            ModelPlacement(mixtral(), ClusterTopology(2, 6))

    def test_rejects_etp_with_indivisible_nodes(self):
        with pytest.raises(ConfigError):
            ModelPlacement(
                grok1(), ClusterTopology(3, 8), ExpertPlacement.EXPERT_TENSOR_PARALLEL
            )
