"""Tests for collective cost models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.parallel.collectives import CollectiveModel
from repro.parallel.topology import ClusterTopology
from repro.units import MB


@pytest.fixture(scope="module")
def single_node():
    return CollectiveModel(ClusterTopology(1, 4))


@pytest.fixture(scope="module")
def two_nodes():
    return CollectiveModel(ClusterTopology(2, 8))


class TestAllReduce:
    def test_single_device_is_free(self, single_node):
        assert single_node.all_reduce_time(1 * MB, group_size=1) == 0.0

    def test_zero_bytes_is_free(self, single_node):
        assert single_node.all_reduce_time(0.0, group_size=4) == 0.0

    def test_ring_formula(self, single_node):
        # 2 x 3/4 of the payload per device at 900 GB/s plus 6 hops.
        time = single_node.all_reduce_time(900 * MB, group_size=4)
        expected = (2 * 3 / 4) * 900 * MB / (900e9) + 6 * 1e-6
        assert time == pytest.approx(expected)

    def test_inter_node_is_slower(self, two_nodes):
        intra = two_nodes.all_reduce_time(1 * MB, 8, crosses_nodes=False)
        inter = two_nodes.all_reduce_time(1 * MB, 8, crosses_nodes=True)
        assert inter > intra

    @given(nbytes=st.floats(1e3, 1e9), group=st.integers(2, 16))
    def test_time_positive_and_bounded(self, single_node, nbytes, group):
        time = single_node.all_reduce_time(nbytes, group)
        assert 0 < time < 2 * nbytes / 900e9 + group * 1e-5 + 1


class TestAllToAll:
    def test_moves_less_than_all_reduce(self, single_node):
        a2a = single_node.all_to_all_time(1 * MB, 4)
        ar = single_node.all_reduce_time(1 * MB, 4)
        assert a2a < ar

    def test_wire_bytes_fraction(self, single_node):
        assert single_node.all_to_all_wire_bytes(8 * MB, 4) == pytest.approx(6 * MB)

    def test_single_device_free(self, single_node):
        assert single_node.all_to_all_time(1 * MB, 1) == 0.0


class TestPointToPoint:
    def test_intra_node_transfer(self, single_node):
        time = single_node.point_to_point_time(900 * MB)
        assert time == pytest.approx(1e-3 + 1e-6)

    def test_zero_transfer_free(self, single_node):
        assert single_node.point_to_point_time(0.0) == 0.0

    def test_negative_rejected(self, single_node):
        with pytest.raises(ConfigError):
            single_node.point_to_point_time(-1.0)


class TestEnergy:
    def test_wire_energy_scales_with_bytes(self, single_node):
        assert single_node.wire_energy(2 * MB) == pytest.approx(2 * single_node.wire_energy(1 * MB))

    def test_all_reduce_wire_bytes(self, single_node):
        assert single_node.all_reduce_wire_bytes(4 * MB, 4) == pytest.approx(6 * MB)

    def test_all_gather_wire_bytes(self, single_node):
        # Ring all-gather: each device forwards its shard to g-1 peers.
        assert single_node.all_gather_wire_bytes(4 * MB, 4) == pytest.approx(12 * MB)

    def test_point_to_point_wire_bytes(self, single_node):
        assert single_node.point_to_point_wire_bytes(4 * MB) == 4 * MB

    def test_group_of_one_puts_nothing_on_wire(self, single_node):
        assert single_node.all_reduce_wire_bytes(4 * MB, 1) == 0.0
        assert single_node.all_to_all_wire_bytes(4 * MB, 1) == 0.0
        assert single_node.all_gather_wire_bytes(4 * MB, 1) == 0.0

    def test_negative_wire_bytes_rejected(self, single_node):
        with pytest.raises(ConfigError):
            single_node.all_gather_wire_bytes(-1.0, 4)
        with pytest.raises(ConfigError):
            single_node.point_to_point_wire_bytes(-1.0)


class TestTimeEnergySymmetry:
    """Every collective that takes time puts bytes on the wire, and vice
    versa — time and energy must agree on when a collective is free."""

    COLLECTIVES = [
        ("all_reduce", lambda m, b, g: m.all_reduce_time(b, g),
         lambda m, b, g: m.all_reduce_wire_bytes(b, g)),
        ("all_to_all", lambda m, b, g: m.all_to_all_time(b, g),
         lambda m, b, g: m.all_to_all_wire_bytes(b, g)),
        ("all_gather", lambda m, b, g: m.all_gather_time(b, g),
         lambda m, b, g: m.all_gather_wire_bytes(b, g)),
        ("point_to_point", lambda m, b, g: m.point_to_point_time(b),
         lambda m, b, g: m.point_to_point_wire_bytes(b)),
    ]

    @pytest.mark.parametrize("name,time_fn,wire_fn", COLLECTIVES, ids=lambda v: str(v))
    @given(nbytes=st.floats(1.0, 1e9), group=st.integers(1, 16))
    def test_free_together(self, single_node, name, time_fn, wire_fn, nbytes, group):
        time = time_fn(single_node, nbytes, group)
        wire = wire_fn(single_node, nbytes, group)
        if name == "point_to_point" or group > 1:
            assert time > 0.0 and wire > 0.0
        else:
            assert time == 0.0 and wire == 0.0

    @pytest.mark.parametrize("name,time_fn,wire_fn", COLLECTIVES, ids=lambda v: str(v))
    @given(group=st.integers(2, 16))
    def test_wire_bytes_scale_linearly(self, single_node, name, time_fn, wire_fn, group):
        # Doubling the payload doubles the wire bytes (energy is linear in
        # bytes, like the bandwidth term of the time model).
        assert wire_fn(single_node, 2 * MB, group) == pytest.approx(
            2 * wire_fn(single_node, 1 * MB, group)
        )


class TestValidation:
    def test_rejects_negative_bytes(self, single_node):
        with pytest.raises(ConfigError):
            single_node.all_reduce_time(-1.0, 4)

    def test_rejects_empty_group(self, single_node):
        with pytest.raises(ConfigError):
            single_node.all_to_all_time(1.0, 0)
