"""Tests for cluster topology."""

import pytest

from repro.errors import ConfigError
from repro.parallel.topology import ClusterTopology, InterconnectSpec
from repro.units import GB_PER_S


class TestTopology:
    def test_device_count(self):
        assert ClusterTopology(2, 8).n_devices == 16

    def test_single_node_does_not_span(self):
        assert not ClusterTopology(1, 4).spans_nodes
        assert ClusterTopology(2, 8).spans_nodes

    def test_link_selection(self):
        topo = ClusterTopology(2, 8)
        intra_bw, _ = topo.link(crosses_nodes=False)
        inter_bw, _ = topo.link(crosses_nodes=True)
        assert intra_bw == 900 * GB_PER_S
        assert inter_bw == 400 * GB_PER_S

    def test_rejects_oversized_node(self):
        with pytest.raises(ConfigError):
            ClusterTopology(1, 9)

    def test_rejects_no_nodes(self):
        with pytest.raises(ConfigError):
            ClusterTopology(0, 4)


class TestDoubling:
    def test_one_device_becomes_two(self):
        doubled = ClusterTopology(1, 1).doubled()
        assert (doubled.n_nodes, doubled.devices_per_node) == (1, 2)

    def test_two_devices_become_four(self):
        doubled = ClusterTopology(1, 2).doubled()
        assert (doubled.n_nodes, doubled.devices_per_node) == (1, 4)

    def test_four_devices_become_one_node_of_eight(self):
        doubled = ClusterTopology(1, 4).doubled()
        assert (doubled.n_nodes, doubled.devices_per_node) == (1, 8)

    def test_six_devices_double_the_node_count(self):
        # 12 devices do not pack into nodes of 8; keep nodes of 6.
        doubled = ClusterTopology(1, 6).doubled()
        assert (doubled.n_nodes, doubled.devices_per_node) == (2, 6)

    def test_twelve_devices_repack_into_full_nodes(self):
        # 24 devices pack evenly into nodes of 8 again.
        doubled = ClusterTopology(2, 6).doubled()
        assert (doubled.n_nodes, doubled.devices_per_node) == (3, 8)

    def test_eight_devices_become_two_nodes(self):
        doubled = ClusterTopology(1, 8).doubled()
        assert (doubled.n_nodes, doubled.devices_per_node) == (2, 8)

    def test_sixteen_devices_become_four_nodes(self):
        doubled = ClusterTopology(2, 8).doubled()
        assert (doubled.n_nodes, doubled.devices_per_node) == (4, 8)

    def test_doubling_always_doubles_device_count(self):
        for devices_per_node in (1, 2, 3, 4, 5, 6, 7, 8):
            for n_nodes in (1, 2, 3):
                topo = ClusterTopology(n_nodes, devices_per_node)
                assert topo.doubled().n_devices == 2 * topo.n_devices

    def test_doubling_preserves_interconnect(self):
        link = InterconnectSpec(intra_node_bandwidth=123 * GB_PER_S)
        doubled = ClusterTopology(1, 6, link).doubled()
        assert doubled.interconnect is link


class TestInterconnectValidation:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            InterconnectSpec(intra_node_bandwidth=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            InterconnectSpec(inter_node_latency_s=-1)

    def test_rejects_negative_link_energy(self):
        with pytest.raises(ConfigError):
            InterconnectSpec(link_energy_pj_per_bit=-1)
