"""Tests for bank-bundle memory spaces and the Duplex allocation policy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigError
from repro.memory.layout import MemoryLayout, MemorySpace, SpaceRole
from repro.units import GiB


@pytest.fixture
def layout():
    return MemoryLayout(device_capacity_bytes=80 * GiB)


class TestMemorySpace:
    def test_allocate_and_release(self):
        space = MemorySpace(index=1, capacity_bytes=10 * GiB)
        space.allocate(4 * GiB)
        assert space.free_bytes == pytest.approx(6 * GiB)
        space.release(4 * GiB)
        assert space.free_bytes == pytest.approx(10 * GiB)

    def test_overflow_rejected(self):
        space = MemorySpace(index=1, capacity_bytes=1 * GiB)
        with pytest.raises(AllocationError):
            space.allocate(2 * GiB)

    def test_over_release_rejected(self):
        space = MemorySpace(index=1, capacity_bytes=1 * GiB)
        space.allocate(0.5 * GiB)
        with pytest.raises(AllocationError):
            space.release(1 * GiB)

    def test_negative_allocation_rejected(self):
        space = MemorySpace(index=1, capacity_bytes=1 * GiB)
        with pytest.raises(ConfigError):
            space.allocate(-1)


class TestConstruction:
    def test_four_equal_spaces(self, layout):
        assert len(layout.spaces) == 4
        assert all(s.capacity_bytes == pytest.approx(20 * GiB) for s in layout.spaces)

    def test_roles_preassigned(self, layout):
        assert layout.kv_space_indices == [1, 2, 3]
        assert layout.scratch_space_index == 4

    def test_rejects_single_space(self):
        with pytest.raises(ConfigError):
            MemoryLayout(device_capacity_bytes=80 * GiB, num_spaces=1)

    def test_rejects_kv_using_all_spaces(self):
        with pytest.raises(ConfigError):
            MemoryLayout(device_capacity_bytes=80 * GiB, num_spaces=4, kv_spaces=4)


class TestExpertPlacement:
    def test_round_robin_over_spaces(self, layout):
        assignment = layout.place_experts({i: 1 * GiB for i in range(8)})
        assert [assignment[i] for i in range(8)] == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_experts_by_space_groups_round_robin(self, layout):
        layout.place_experts({i: 1 * GiB for i in range(8)})
        groups = layout.experts_by_space()
        assert groups == {1: [0, 4], 2: [1, 5], 3: [2, 6], 4: [3, 7]}

    def test_expert_space_lookup(self, layout):
        layout.place_experts({3: 1 * GiB, 7: 1 * GiB})
        assert layout.expert_space(3) == 1
        assert layout.expert_space(7) == 2

    def test_missing_expert_raises(self, layout):
        with pytest.raises(AllocationError):
            layout.expert_space(42)

    def test_expert_role_recorded(self, layout):
        layout.place_experts({0: 1 * GiB})
        assert SpaceRole.EXPERT in layout.spaces[0].roles


class TestKvAndScratch:
    def test_kv_spread_over_three_spaces(self, layout):
        layout.reserve_kv(6 * GiB)
        for space in layout.spaces[:3]:
            assert space.used_bytes == pytest.approx(2 * GiB)
        assert layout.spaces[3].used_bytes == 0

    def test_kv_release_restores(self, layout):
        layout.reserve_kv(6 * GiB)
        layout.release_kv(6 * GiB)
        assert layout.kv_bytes == 0
        assert layout.total_free_bytes == pytest.approx(80 * GiB)

    def test_scratch_goes_to_fourth_space(self, layout):
        layout.reserve_scratch(1 * GiB)
        assert layout.spaces[3].used_bytes == pytest.approx(1 * GiB)
        layout.release_scratch(1 * GiB)
        assert layout.spaces[3].used_bytes == 0

    def test_migration_costs_read_plus_write(self):
        assert MemoryLayout.migration_bytes(100.0) == 200.0


class TestConflicts:
    def test_disjoint_spaces_are_conflict_free(self, layout):
        assert layout.conflict_free({1, 2}, {3, 4})

    def test_shared_space_conflicts(self, layout):
        assert not layout.conflict_free({1, 2}, {2, 3})

    @given(
        xpu=st.sets(st.integers(1, 4), max_size=4),
        pim=st.sets(st.integers(1, 4), max_size=4),
    )
    def test_conflict_symmetry(self, xpu, pim):
        fresh = MemoryLayout(device_capacity_bytes=80 * GiB)
        assert fresh.conflict_free(xpu, pim) == fresh.conflict_free(pim, xpu)


class TestCapacityPressure:
    def test_general_weights_fill_remaining(self, layout):
        layout.place_experts({i: 10 * GiB for i in range(4)})
        layout.place_general_weights(30 * GiB)
        assert layout.total_free_bytes == pytest.approx(10 * GiB)

    def test_general_weight_overflow_raises(self, layout):
        layout.place_experts({i: 15 * GiB for i in range(4)})
        with pytest.raises(AllocationError):
            layout.place_general_weights(30 * GiB)

    def test_kv_overflow_raises(self, layout):
        layout.place_experts({i: 19 * GiB for i in range(4)})
        with pytest.raises(AllocationError):
            layout.reserve_kv(10 * GiB)
