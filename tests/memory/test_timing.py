"""Unit tests for HBM3 timing parameters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memory.timing import HBM3Timing
from repro.units import GB_PER_S


class TestDefaults:
    def test_default_timing_is_valid(self):
        timing = HBM3Timing()
        assert timing.tCK > 0

    def test_tccd_l_is_twice_tccd_s(self):
        timing = HBM3Timing()
        assert timing.tCCD_L == pytest.approx(2 * timing.tCCD_S)

    def test_trc_is_tras_plus_trp(self):
        timing = HBM3Timing()
        assert timing.tRC == pytest.approx(timing.tRAS + timing.tRP)

    def test_burst_bytes(self):
        assert HBM3Timing().burst_bytes == 32

    def test_refresh_availability_below_one(self):
        timing = HBM3Timing()
        assert 0.8 < timing.refresh_availability < 1.0


class TestPeakBandwidth:
    def test_peak_channel_bandwidth_matches_hbm3(self):
        # 32 B per 1.5 ns = 21.3 GB/s per pseudo channel.
        timing = HBM3Timing()
        assert timing.peak_channel_bandwidth() == pytest.approx(21.33 * GB_PER_S, rel=0.01)

    def test_bundle_path_is_4x_external(self):
        timing = HBM3Timing()
        ratio = timing.peak_bundle_bandwidth() / timing.peak_channel_bandwidth()
        assert ratio == pytest.approx(4.0)

    def test_bundle_ratio_tracks_tccd_ratio(self):
        # 8 banks per tCCD_L vs 1 bank per tCCD_S: ratio = 8 * tCCD_S / tCCD_L.
        timing = HBM3Timing(tCCD_S=1.0, tCCD_L=4.0)
        ratio = timing.peak_bundle_bandwidth() / timing.peak_channel_bandwidth()
        assert ratio == pytest.approx(2.0)


class TestValidation:
    @pytest.mark.parametrize("field", ["tCK", "tCCD_S", "tRCD", "tRP", "tRAS", "tFAW", "tREFI", "tRFC"])
    def test_rejects_non_positive(self, field):
        with pytest.raises(ConfigError):
            HBM3Timing(**{field: 0.0})

    def test_rejects_tccd_l_below_tccd_s(self):
        with pytest.raises(ConfigError):
            HBM3Timing(tCCD_S=2.0, tCCD_L=1.0)

    def test_rejects_trrd_l_below_trrd_s(self):
        with pytest.raises(ConfigError):
            HBM3Timing(tRRD_S=6.0, tRRD_L=4.0)

    def test_rejects_tras_below_trcd(self):
        with pytest.raises(ConfigError):
            HBM3Timing(tRCD=20.0, tRAS=10.0)


class TestProperties:
    @given(tccd_s=st.floats(0.5, 4.0), factor=st.floats(1.0, 4.0))
    def test_peak_bandwidth_inverse_in_tccd(self, tccd_s, factor):
        base = HBM3Timing(tCCD_S=tccd_s, tCCD_L=2 * tccd_s)
        slower = HBM3Timing(tCCD_S=tccd_s * factor, tCCD_L=2 * tccd_s * factor)
        assert base.peak_channel_bandwidth() == pytest.approx(
            slower.peak_channel_bandwidth() * factor, rel=1e-9
        )
