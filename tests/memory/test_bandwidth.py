"""Tests for the analytic bandwidth model and its calibration."""

import pytest

from repro.errors import ConfigError
from repro.memory.bandwidth import BandwidthModel
from repro.memory.engine import AccessMode
from repro.memory.geometry import HBMGeometry
from repro.memory.timing import HBM3Timing
from repro.units import KiB, TB_PER_S


@pytest.fixture(scope="module")
def calibrated():
    return BandwidthModel.calibrated(stream_bytes=256 * KiB)


class TestPeaks:
    def test_stack_peak_external_matches_hbm3(self):
        model = BandwidthModel(timing=HBM3Timing(), geometry=HBMGeometry())
        # 21.3 GB/s x 32 pseudo channels ~ 683 GB/s per stack.
        assert model.peak_external_per_stack() == pytest.approx(0.683 * TB_PER_S, rel=0.01)

    def test_stack_peak_bundle_is_4x(self):
        model = BandwidthModel(timing=HBM3Timing(), geometry=HBMGeometry())
        assert model.peak_bundle_per_stack() == pytest.approx(4 * model.peak_external_per_stack())


class TestCalibration:
    def test_external_efficiency_high(self, calibrated):
        assert 0.9 < calibrated.external_efficiency <= 1.0

    def test_bundle_efficiency_high(self, calibrated):
        assert 0.9 < calibrated.bundle_efficiency <= 1.0

    def test_speedup_near_four(self, calibrated):
        assert 3.6 < calibrated.bundle_speedup < 4.4

    def test_effective_below_peak(self, calibrated):
        assert calibrated.effective(AccessMode.EXTERNAL) < calibrated.peak_external_per_stack()
        assert calibrated.effective(AccessMode.BUNDLE) < calibrated.peak_bundle_per_stack()

    def test_five_stack_device_near_h100(self, calibrated):
        # Five stacks should land in the ballpark of the H100's 3.35 TB/s.
        device = 5 * calibrated.effective(AccessMode.EXTERNAL)
        assert 2.8 * TB_PER_S < device < 3.5 * TB_PER_S


class TestValidation:
    def test_rejects_zero_efficiency(self):
        with pytest.raises(ConfigError):
            BandwidthModel(timing=HBM3Timing(), geometry=HBMGeometry(), external_efficiency=0.0)

    def test_rejects_efficiency_above_one(self):
        with pytest.raises(ConfigError):
            BandwidthModel(timing=HBM3Timing(), geometry=HBMGeometry(), bundle_efficiency=1.2)
