"""Tests for the HBMStack facade."""

import pytest

from repro.errors import ConfigError
from repro.memory.stack import HBMStack
from repro.units import GiB, TB_PER_S


class TestStack:
    def test_default_capacity(self):
        assert HBMStack().capacity_bytes == 16 * GiB

    def test_external_bandwidth_reasonable(self):
        stack = HBMStack()
        assert 0.5 * TB_PER_S < stack.external_bandwidth < 0.7 * TB_PER_S

    def test_internal_speedup_near_four(self):
        stack = HBMStack()
        assert 3.5 < stack.internal_speedup < 4.5

    def test_plain_stack_has_no_pim_path(self):
        stack = HBMStack(has_logic_pim_path=False)
        with pytest.raises(ConfigError):
            _ = stack.internal_bandwidth

    def test_bandwidth_model_auto_created(self):
        assert HBMStack().bandwidth is not None
