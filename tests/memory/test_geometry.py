"""Unit tests for HBM stack geometry and bank bundles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memory.geometry import HBMGeometry
from repro.units import GiB


class TestDefaults:
    def test_paper_organisation(self):
        geo = HBMGeometry()
        assert geo.pseudo_channels == 32
        assert geo.ranks == 2
        assert geo.banks_per_rank == 16
        assert geo.banks_per_channel == 32

    def test_four_bundles_per_channel(self):
        # Two ranks x two bundles per rank = the paper's four memory spaces.
        geo = HBMGeometry()
        assert geo.bundles_per_rank == 2
        assert geo.bundles_per_channel == 4

    def test_bundle_takes_two_banks_per_group(self):
        assert HBMGeometry().banks_per_bundle_per_group == 2

    def test_bundle_capacity_is_quarter_stack(self):
        geo = HBMGeometry()
        assert geo.bundle_capacity_bytes == pytest.approx(geo.capacity_bytes / 4)

    def test_rows_per_bank_positive(self):
        assert HBMGeometry().rows_per_bank > 0

    def test_capacity_roundtrip_through_rows(self):
        geo = HBMGeometry()
        derived = geo.rows_per_bank * geo.row_bytes * geo.banks_per_channel * geo.pseudo_channels
        assert derived == pytest.approx(16 * GiB, rel=0.01)


class TestBundleIndex:
    def test_indices_are_one_based_and_cover_range(self):
        geo = HBMGeometry()
        seen = {
            geo.bundle_index(rank, bank)
            for rank in range(geo.ranks)
            for bank in range(geo.banks_per_rank)
        }
        assert seen == {1, 2, 3, 4}

    def test_each_bundle_has_eight_banks(self):
        geo = HBMGeometry()
        counts = {}
        for rank in range(geo.ranks):
            for bank in range(geo.banks_per_rank):
                idx = geo.bundle_index(rank, bank)
                counts[idx] = counts.get(idx, 0) + 1
        assert all(count == geo.banks_per_bundle for count in counts.values())

    def test_bundle_spans_all_groups_evenly(self):
        geo = HBMGeometry()
        per_group = {}
        for bank in range(geo.banks_per_rank):
            idx = geo.bundle_index(0, bank)
            group = bank // geo.banks_per_group
            per_group.setdefault(idx, {}).setdefault(group, 0)
            per_group[idx][group] += 1
        for groups in per_group.values():
            assert all(count == geo.banks_per_bundle_per_group for count in groups.values())

    def test_rank_offsets_bundle_index(self):
        geo = HBMGeometry()
        assert geo.bundle_index(0, 0) != geo.bundle_index(1, 0)

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ConfigError):
            HBMGeometry().bundle_index(2, 0)

    def test_out_of_range_bank_rejected(self):
        with pytest.raises(ConfigError):
            HBMGeometry().bundle_index(0, 16)


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            HBMGeometry(capacity_bytes=0)

    def test_rejects_bundle_not_dividing_rank(self):
        with pytest.raises(ConfigError):
            HBMGeometry(banks_per_bundle=3)

    def test_rejects_bundle_not_spanning_groups(self):
        # 4 banks per bundle with 4 groups would be fine (1 per group), but 2
        # banks per bundle cannot take the same number from each of 4 groups.
        with pytest.raises(ConfigError):
            HBMGeometry(banks_per_bundle=2)

    @given(ranks=st.integers(1, 4))
    def test_bundles_scale_with_ranks(self, ranks):
        geo = HBMGeometry(ranks=ranks)
        assert geo.bundles_per_channel == 2 * ranks
