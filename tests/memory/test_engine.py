"""Tests for the cycle-level streaming-read engine.

These pin down the bandwidth facts the whole evaluation rests on: the
external path is tCCD_S-limited, the bundle path sustains ~4x that, and a
single bundle (co-processing confinement) pays a visible row-switch penalty.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memory.engine import AccessMode, StreamingReadEngine
from repro.memory.geometry import HBMGeometry
from repro.memory.timing import HBM3Timing
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def engine():
    return StreamingReadEngine()


@pytest.fixture(scope="module")
def external_result(engine):
    return engine.stream(1 * MiB, AccessMode.EXTERNAL)


@pytest.fixture(scope="module")
def bundle_result(engine):
    return engine.stream(1 * MiB, AccessMode.BUNDLE)


class TestExternalPath:
    def test_reaches_most_of_peak(self, engine, external_result):
        peak = engine.timing.peak_channel_bandwidth() * engine.timing.refresh_availability
        assert external_result.channel_bandwidth > 0.9 * peak

    def test_never_exceeds_peak(self, engine, external_result):
        assert external_result.channel_bandwidth <= engine.timing.peak_channel_bandwidth()

    def test_burst_count_matches_payload(self, engine, external_result):
        expected = (1 * MiB) / engine.timing.burst_bytes
        assert external_result.bursts == expected

    def test_activate_count_matches_rows(self, engine, external_result):
        expected = (1 * MiB) / engine.geometry.row_bytes
        assert external_result.activates == expected


class TestBundlePath:
    def test_speedup_close_to_four(self, external_result, bundle_result):
        ratio = bundle_result.channel_bandwidth / external_result.channel_bandwidth
        assert 3.7 < ratio < 4.3

    def test_two_bundles_hide_row_switches(self, engine, bundle_result):
        peak = engine.timing.peak_bundle_bandwidth() * engine.timing.refresh_availability
        assert bundle_result.channel_bandwidth > 0.95 * peak

    def test_single_bundle_pays_row_switch_penalty(self, engine, bundle_result):
        confined = engine.stream(1 * MiB, AccessMode.BUNDLE, interleaved_bundles=1)
        assert confined.channel_bandwidth < bundle_result.channel_bandwidth
        # But it must still beat the external path by a wide margin.
        external = engine.stream(1 * MiB, AccessMode.EXTERNAL)
        assert confined.channel_bandwidth > 2.5 * external.channel_bandwidth

    def test_one_activate_per_bundle_row(self, engine, bundle_result):
        bundle_row = engine.geometry.row_bytes * engine.geometry.banks_per_bundle
        assert bundle_result.activates == (1 * MiB) / bundle_row

    def test_rejects_too_many_bundles(self, engine):
        with pytest.raises(ConfigError):
            engine.stream(1 * MiB, AccessMode.BUNDLE, interleaved_bundles=5)


class TestEdgeCases:
    def test_rejects_empty_stream(self, engine):
        with pytest.raises(ConfigError):
            engine.stream(0, AccessMode.EXTERNAL)

    def test_tiny_stream_single_row(self, engine):
        result = engine.stream(64, AccessMode.EXTERNAL)
        assert result.bursts == 2
        assert result.activates == 1

    def test_sub_row_bundle_stream(self, engine):
        result = engine.stream(100, AccessMode.BUNDLE)
        assert result.activates == 1
        assert result.elapsed_ns > 0

    def test_partial_final_row(self, engine):
        # 1.5 rows -> 2 activates, 48 bursts.
        result = engine.stream(1536, AccessMode.EXTERNAL)
        assert result.activates == 2
        assert result.bursts == 48

    def test_bus_utilization_bounded(self, external_result, bundle_result):
        for result in (external_result, bundle_result):
            assert 0.0 < result.bus_utilization <= 1.0


class TestScalingProperties:
    @settings(max_examples=10, deadline=None)
    @given(size_kib=st.integers(32, 256))
    def test_bandwidth_stable_across_sizes(self, engine, size_kib):
        # Streaming bandwidth should not depend on payload size once warm.
        result = engine.stream(size_kib * KiB, AccessMode.EXTERNAL)
        reference = engine.stream(128 * KiB, AccessMode.EXTERNAL)
        assert result.channel_bandwidth == pytest.approx(reference.channel_bandwidth, rel=0.05)

    def test_slower_tccd_lowers_bandwidth(self):
        fast = StreamingReadEngine(HBM3Timing())
        slow = StreamingReadEngine(HBM3Timing(tCCD_S=3.0, tCCD_L=6.0))
        fast_bw = fast.stream(256 * KiB, AccessMode.EXTERNAL).channel_bandwidth
        slow_bw = slow.stream(256 * KiB, AccessMode.EXTERNAL).channel_bandwidth
        assert fast_bw > 1.5 * slow_bw

    def test_elapsed_monotone_in_payload(self, engine):
        small = engine.stream(64 * KiB, AccessMode.BUNDLE)
        large = engine.stream(512 * KiB, AccessMode.BUNDLE)
        assert large.elapsed_ns > small.elapsed_ns

    def test_row_starved_stream_still_completes(self):
        # A geometry with one bank group exposes the tCCD_L-only path.
        geo = HBMGeometry(bank_groups=1, banks_per_group=4, banks_per_bundle=4)
        engine = StreamingReadEngine(geometry=geo)
        result = engine.stream(64 * KiB, AccessMode.EXTERNAL)
        assert result.bursts == 64 * KiB / engine.timing.burst_bytes
