"""Golden-report regression tests (tier 3 — see TESTING.md).

Each case runs a figure on a *tiny preset* (reduced grid, short fast-mode
simulation window) and serializes the resulting rows to canonical JSON.
The serialized text must match the snapshot under ``tests/golden/``
byte-for-byte: any behavioural drift in the serving core — scheduler
ordering, RNG consumption, metric accounting, float summation order —
shows up as a diff, not as a silently shifted percentile.

Workflow:

* ``pytest tests/golden`` — compare against the snapshots.
* ``pytest tests/golden --update-golden`` — rewrite the snapshots after an
  *intentional* behaviour change (review the diff before committing).

The determinism test runs one case twice in the same process and requires
byte-identical output, which is what makes the snapshots trustworthy: a
mismatch there means a seeded run depends on iteration order of an
unordered container (or other hidden state), not on the seed.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments import fig11, fig12, fig13, fig16
from repro.serving.simulator import SimulationLimits

GOLDEN_DIR = Path(__file__).parent

pytestmark = pytest.mark.golden


# ----------------------------------------------------------------------
# tiny presets — small enough for tier-1 CI, large enough to exercise
# admission, completion, and percentile paths
# ----------------------------------------------------------------------
def _fig11_tiny():
    return fig11.run(
        model_keys=("mixtral",),
        batches=(32,),
        pairs_by_model={"mixtral": ((256, 256),)},
        limits=SimulationLimits(max_stages=60, warmup_stages=8),
        seed=0,
    )


def _fig12_tiny():
    return fig12.run(
        model_key="glam",
        pairs=((128, 128),),
        batch=32,
        seed=0,
        limits=SimulationLimits(max_stages=220, warmup_stages=8, target_completions=16),
    )


def _fig13_tiny():
    return fig13.run(
        qps_values=(6.0,),
        lin=1024,
        lout=128,
        max_batch=32,
        limits=SimulationLimits(max_stages=120, warmup_stages=12),
        seed=0,
        memoize=True,  # the fast-mode path: quantized, expected-counts pricing
        workers=1,
    )


def _fig16_tiny():
    return fig16.run(
        pairs=((256, 256),),
        batch=32,
        # No completion target: the window must cover the split system's
        # *second* prefill cohort so T2FT lands in the measured region.
        limits=SimulationLimits(max_stages=340, warmup_stages=8),
        seed=0,
    )


CASES = {
    "fig11_throughput": _fig11_tiny,
    "fig12_latency": _fig12_tiny,
    "fig13_qps": _fig13_tiny,
    "fig16_split": _fig16_tiny,
}


def render_rows(rows) -> str:
    """Canonical JSON for a list of figure-row dataclasses.

    ``json`` serializes floats with ``repr`` (shortest round-trip), so two
    runs agree byte-for-byte exactly when every float is bit-identical.
    """
    payload = [dataclasses.asdict(row) for row in rows]
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_report(name: str, update_golden: bool):
    text = render_rows(CASES[name]())
    path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        path.write_text(text)
        pytest.skip(f"golden snapshot rewritten: {path}")
    assert path.exists(), (
        f"missing golden snapshot {path} — run `pytest tests/golden --update-golden`"
    )
    assert text == path.read_text(), (
        f"{name} drifted from its golden snapshot; if the change is intentional, "
        f"regenerate with `pytest tests/golden --update-golden` and review the diff"
    )


def test_same_seed_is_byte_identical_in_process():
    """Two same-seed runs in one process must serialize identically.

    This is the determinism canary for the whole serving stack: fig16
    drives both the monolithic simulator and the split two-partition
    engine, so hidden unordered-container iteration anywhere in the
    scheduler/executor path breaks this before it breaks a platform
    cross-check.
    """
    first = render_rows(_fig16_tiny())
    second = render_rows(_fig16_tiny())
    assert first == second
