"""Tests for unit constants and the public package surface."""

import pytest

import repro
from repro import units


class TestUnits:
    def test_binary_vs_decimal_capacity(self):
        assert units.GiB == 2**30
        assert units.GB == 1e9
        assert units.GiB > units.GB

    def test_bandwidth_constants(self):
        assert units.TB_PER_S == 1000 * units.GB_PER_S

    def test_bits(self):
        assert units.bits(2) == 16

    def test_seconds_to_ms(self):
        assert units.seconds_to_ms(0.5) == pytest.approx(500.0)

    def test_tokens_per_second(self):
        assert units.tokens_per_second(100, 2.0) == 50.0
        assert units.tokens_per_second(100, 0.0) == 0.0

    def test_fp16_bytes(self):
        assert units.FP16_BYTES == 2


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy(self):
        for error in (
            repro.ConfigError,
            repro.CapacityError,
            repro.SchedulingError,
            repro.SimulationError,
            repro.AllocationError,
            repro.TimingError,
        ):
            assert issubclass(error, repro.ReproError)
