"""Tests for the DRAM-path and compute energy models."""

import pytest

from repro.errors import ConfigError
from repro.hardware.energy import ComputeEnergyModel, DramEnergyModel, EnergyModel, ReadPath
from repro.hardware.processor import UnitKind


class TestDramPaths:
    def test_paths_are_ordered_by_distance(self):
        model = DramEnergyModel()
        ordered = [
            ReadPath.BANK_LOCAL,
            ReadPath.BANKGROUP_LOCAL,
            ReadPath.LOGIC_DIE,
            ReadPath.EXTERNAL,
        ]
        energies = [model.read_pj_per_bit(path) for path in ordered]
        assert energies == sorted(energies)

    def test_external_matches_literature(self):
        # O'Connor et al. put an HBM external read at ~3.97 pJ/b.
        assert DramEnergyModel().read_pj_per_bit(ReadPath.EXTERNAL) == pytest.approx(3.97)

    def test_logic_die_saves_interposer_energy(self):
        model = DramEnergyModel()
        saved = model.read_pj_per_bit(ReadPath.EXTERNAL) - model.read_pj_per_bit(ReadPath.LOGIC_DIE)
        assert saved == pytest.approx(model.interposer_phy)

    def test_writes_cost_like_reads(self):
        model = DramEnergyModel()
        for path in ReadPath:
            assert model.write_pj_per_bit(path) == model.read_pj_per_bit(path)

    def test_rejects_negative_component(self):
        with pytest.raises(ConfigError):
            DramEnergyModel(tsv=-0.1)


class TestComputeEnergies:
    def test_logic_pim_is_cheapest_flop(self):
        model = ComputeEnergyModel()
        cheapest = min(model.pj_per_flop(kind) for kind in UnitKind)
        assert cheapest == model.pj_per_flop(UnitKind.LOGIC_PIM)

    def test_bank_pim_is_most_expensive_flop(self):
        model = ComputeEnergyModel()
        priciest = max(model.pj_per_flop(kind) for kind in UnitKind)
        assert priciest == model.pj_per_flop(UnitKind.BANK_PIM)

    def test_rejects_zero_energy(self):
        with pytest.raises(ConfigError):
            ComputeEnergyModel(xpu=0.0)


class TestEnergyModelBundle:
    def test_kind_routing(self):
        model = EnergyModel()
        assert model.read_pj_per_bit(UnitKind.XPU) == model.dram.read_pj_per_bit(ReadPath.EXTERNAL)
        assert model.read_pj_per_bit(UnitKind.LOGIC_PIM) == model.dram.read_pj_per_bit(
            ReadPath.LOGIC_DIE
        )
        assert model.read_pj_per_bit(UnitKind.BANK_PIM) == model.dram.read_pj_per_bit(
            ReadPath.BANK_LOCAL
        )

    def test_flop_routing(self):
        model = EnergyModel()
        assert model.flop_pj(UnitKind.XPU) == model.compute.xpu
