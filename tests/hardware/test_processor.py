"""Tests for the roofline processing-unit model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hardware.processor import ProcessingUnit, UnitKind
from repro.units import GB, TFLOPS


def make_unit(**overrides):
    params = dict(
        name="test-unit",
        kind=UnitKind.XPU,
        peak_flops=100 * TFLOPS,
        mem_bandwidth=1e12,
        compute_efficiency=1.0,
        launch_overhead_s=0.0,
        read_energy_pj_per_bit=4.0,
        write_energy_pj_per_bit=4.0,
        flop_energy_pj=1.0,
    )
    params.update(overrides)
    return ProcessingUnit(**params)


class TestRoofline:
    def test_memory_bound_op(self):
        unit = make_unit()
        # 1 GB at 1 TB/s = 1 ms; compute side is far faster.
        assert unit.op_time(flops=1e9, bytes_read=1 * GB) == pytest.approx(1e-3)

    def test_compute_bound_op(self):
        unit = make_unit()
        # 1e15 FLOP at 1e14 FLOP/s = 10 s.
        assert unit.op_time(flops=1e15, bytes_read=1) == pytest.approx(10.0)

    def test_ridge_point(self):
        unit = make_unit()
        assert unit.ridge_opb == pytest.approx(100.0)

    def test_efficiency_scales_compute_side(self):
        unit = make_unit(compute_efficiency=0.5)
        assert unit.effective_flops == pytest.approx(50 * TFLOPS)
        assert unit.ridge_opb == pytest.approx(50.0)

    def test_launch_overhead_added_once(self):
        unit = make_unit(launch_overhead_s=1e-6)
        assert unit.op_time(flops=0, bytes_read=1000) == pytest.approx(1e-9 + 1e-6)

    def test_zero_op_costs_nothing(self):
        unit = make_unit(launch_overhead_s=1e-6)
        assert unit.op_time(flops=0, bytes_read=0) == 0.0

    def test_writes_count_toward_memory_time(self):
        unit = make_unit()
        read_only = unit.op_time(flops=0, bytes_read=1 * GB)
        with_writes = unit.op_time(flops=0, bytes_read=1 * GB, bytes_written=1 * GB)
        assert with_writes == pytest.approx(2 * read_only)

    def test_negative_inputs_rejected(self):
        unit = make_unit()
        with pytest.raises(ConfigError):
            unit.op_time(flops=-1, bytes_read=0)

    @given(
        flops=st.floats(1e6, 1e15),
        nbytes=st.floats(1e3, 1e12),
        extra=st.floats(1.0, 100.0),
    )
    def test_time_monotone_in_work(self, flops, nbytes, extra):
        unit = make_unit()
        base = unit.op_time(flops, nbytes)
        assert unit.op_time(flops * extra, nbytes) >= base
        assert unit.op_time(flops, nbytes * extra) >= base


class TestEnergy:
    def test_read_energy(self):
        unit = make_unit(flop_energy_pj=0.0)
        # 1000 bytes * 8 bits * 4 pJ/b = 32 nJ.
        assert unit.op_energy(flops=0, bytes_read=1000) == pytest.approx(32e-9)

    def test_compute_energy(self):
        unit = make_unit(read_energy_pj_per_bit=0.0, write_energy_pj_per_bit=0.0)
        assert unit.op_energy(flops=1e9, bytes_read=0) == pytest.approx(1e-3)

    def test_energy_splits_sum_to_total(self):
        unit = make_unit()
        flops, br, bw = 1e9, 1e6, 1e5
        total = unit.op_energy(flops, br, bw)
        assert total == pytest.approx(unit.dram_energy(br, bw) + unit.compute_energy(flops))


class TestUtilization:
    def test_low_opb_means_low_utilization(self):
        unit = make_unit()
        # Op/B of 1 on a ridge-100 unit: ~1% utilization (Section III).
        util = unit.utilization(flops=1e9, bytes_read=1e9)
        assert util == pytest.approx(0.01, rel=0.01)

    def test_compute_bound_utilization_reaches_efficiency(self):
        unit = make_unit(compute_efficiency=0.7)
        util = unit.utilization(flops=1e15, bytes_read=1.0)
        assert util == pytest.approx(0.7, rel=0.01)

    def test_achieved_flops_never_exceeds_effective(self):
        unit = make_unit(compute_efficiency=0.8)
        for opb in (0.1, 1, 10, 100, 1000):
            achieved = unit.achieved_flops(flops=opb * 1e9, bytes_read=1e9)
            assert achieved <= unit.effective_flops * (1 + 1e-9)


class TestValidation:
    def test_rejects_zero_flops(self):
        with pytest.raises(ConfigError):
            make_unit(peak_flops=0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            make_unit(mem_bandwidth=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            make_unit(compute_efficiency=1.5)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigError):
            make_unit(launch_overhead_s=-1)
