"""Tests for the Section VII-E area accounting."""

import pytest

from repro.errors import ConfigError
from repro.hardware.area import AreaModel, LogicPimAreaBudget
from repro.hardware.processor import UnitKind


class TestLogicPimBudget:
    def test_total_is_17_80_mm2(self):
        assert LogicPimAreaBudget().total == pytest.approx(17.81, abs=0.02)

    def test_fraction_is_14_71_percent(self):
        assert LogicPimAreaBudget().fraction_of_logic_die == pytest.approx(0.1471, abs=0.002)

    def test_tsv_fraction_is_9_percent(self):
        assert LogicPimAreaBudget().tsv_fraction_of_logic_die == pytest.approx(0.09, abs=0.002)

    def test_rejects_non_positive_component(self):
        with pytest.raises(ConfigError):
            LogicPimAreaBudget(tsv=0.0)


class TestAreaModel:
    def test_logic_pim_area_comes_from_budget(self):
        model = AreaModel()
        assert model.area_mm2(UnitKind.LOGIC_PIM) == pytest.approx(model.logic_pim_budget.total)

    def test_bankgroup_pim_pays_the_process_premium(self):
        model = AreaModel()
        assert model.area_mm2(UnitKind.BANKGROUP_PIM) > 1.5 * model.area_mm2(UnitKind.LOGIC_PIM)

    def test_xpu_has_no_edap_area(self):
        with pytest.raises(ConfigError):
            AreaModel().area_mm2(UnitKind.XPU)

    def test_dram_overhead_fraction_in_published_range(self):
        # Commercial in-DRAM PIMs overhead is 20-27% of a die; our per-stack
        # figure spread over 8 dies must stay well below that ceiling.
        model = AreaModel()
        fraction = model.dram_die_overhead_fraction(UnitKind.BANK_PIM)
        assert 0.0 < fraction < 0.27

    def test_logic_pim_has_no_dram_overhead(self):
        with pytest.raises(ConfigError):
            AreaModel().dram_die_overhead_fraction(UnitKind.LOGIC_PIM)

    def test_rejects_sub_unity_process_factor(self):
        with pytest.raises(ConfigError):
            AreaModel(dram_process_factor=0.5)
