"""Tests that the unit factories reproduce the paper's Section VI numbers."""

import pytest

from repro.hardware.compute import LOGIC_PIM_MAC_ARRAY, MacArray
from repro.hardware.specs import (
    DUPLEX_STACKS,
    bank_pim_unit,
    bankgroup_pim_unit,
    h100_xpu,
    logic_pim_unit,
)
from repro.units import MHZ, TB_PER_S, TFLOPS


class TestMacArray:
    def test_logic_pim_array_hits_21_3_tflops(self):
        # 32 modules x 512 MACs x 650 MHz x 2 = 21.3 TFLOPS (Section VI).
        assert LOGIC_PIM_MAC_ARRAY.peak_flops == pytest.approx(21.3 * TFLOPS, rel=0.01)

    def test_for_peak_flops_round_trip(self):
        array = MacArray.for_peak_flops(21.3 * TFLOPS, frequency_hz=650 * MHZ)
        assert array.modules == 32

    def test_total_macs(self):
        assert LOGIC_PIM_MAC_ARRAY.total_macs == 16384


class TestXpu:
    def test_peak_flops_is_h100(self):
        assert h100_xpu().peak_flops == pytest.approx(989.5 * TFLOPS)

    def test_bandwidth_near_h100(self):
        # Effective bandwidth should be a bit below the 3.35 TB/s nominal.
        bw = h100_xpu().mem_bandwidth
        assert 2.7 * TB_PER_S < bw < 3.35 * TB_PER_S

    def test_ridge_in_the_hundreds(self):
        assert 150 < h100_xpu().ridge_opb < 350


class TestLogicPim:
    def test_per_stack_flops(self):
        unit = logic_pim_unit()
        assert unit.peak_flops / DUPLEX_STACKS == pytest.approx(21.3 * TFLOPS, rel=0.01)

    def test_ridge_near_eight(self):
        # Compute-to-bandwidth ratio of 8 (Section IV-B), modulo efficiency.
        assert 6.5 < logic_pim_unit().ridge_opb < 9.0

    def test_bandwidth_is_4x_xpu(self):
        ratio = logic_pim_unit().mem_bandwidth / h100_xpu().mem_bandwidth
        assert ratio == pytest.approx(4.0, rel=0.02)


class TestBankPim:
    def test_ridge_near_one(self):
        assert 0.7 < bank_pim_unit().ridge_opb < 1.1

    def test_bandwidth_is_16x_conventional(self):
        ratio = bank_pim_unit().mem_bandwidth / h100_xpu().mem_bandwidth
        assert ratio == pytest.approx(16.0, rel=0.1)

    def test_cheapest_read_path(self):
        units = [h100_xpu(), logic_pim_unit(), bankgroup_pim_unit(), bank_pim_unit()]
        energies = [u.read_energy_pj_per_bit for u in units]
        assert energies == sorted(energies, reverse=True)


class TestBankGroupPim:
    def test_same_roofline_as_logic_pim(self):
        bg, lp = bankgroup_pim_unit(), logic_pim_unit()
        assert bg.peak_flops == lp.peak_flops
        assert bg.mem_bandwidth == lp.mem_bandwidth

    def test_cheaper_reads_but_pricier_flops_than_logic_pim(self):
        bg, lp = bankgroup_pim_unit(), logic_pim_unit()
        assert bg.read_energy_pj_per_bit < lp.read_energy_pj_per_bit
        assert bg.flop_energy_pj > lp.flop_energy_pj


class TestStackScaling:
    @pytest.mark.parametrize("stacks", [1, 4, 5, 6])
    def test_units_scale_linearly_with_stacks(self, stacks):
        unit = logic_pim_unit(stacks=stacks)
        base = logic_pim_unit(stacks=1)
        assert unit.peak_flops == pytest.approx(stacks * base.peak_flops)
        assert unit.mem_bandwidth == pytest.approx(stacks * base.mem_bandwidth)
