# Developer entry points.  Everything runs from the repo root and
# assumes only the baked-in toolchain (python + numpy + pytest);
# `make lint` and `make typecheck` additionally want ruff / mypy,
# matching the CI lint and typecheck jobs.

PYTHON ?= python
PYTEST := PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test fast slow simlint simlint-baseline lint typecheck check

test:  ## tier-1 gate: the whole unit/integration + benchmark suite
	$(PYTEST) -x -q

fast:  ## CI fast stage: tests without the figure benchmarks
	$(PYTEST) -x -q --ignore=benchmarks

slow:  ## CI slow stage entry: benchmarks only (goldens, sweeps)
	$(PYTEST) benchmarks -x -q

simlint:  ## determinism linter over the serving stack (CI simlint job)
	$(PYTHON) -m tools.simlint src tests

simlint-baseline:  ## rewrite tools/simlint/baseline.json (reasons kept)
	$(PYTHON) -m tools.simlint src tests --update-baseline

lint:  ## ruff (CI lint job); requires ruff on PATH
	ruff check .

typecheck:  ## scoped mypy --strict (CI typecheck job, non-blocking)
	$(PYTHON) -m mypy

check: simlint fast  ## quick pre-push: determinism lint + fast tests
